"""Capacity-matrix runner: real servers, open-loop load, percentile tables.

For every :class:`~repro.bench.spec.BenchSpec` the runner

1. boots a **real server** for the primary — a ``python -m repro serve``
   subprocess by default (the same plumbing the CI smokes use), or an
   in-process :class:`~repro.service.server.BackgroundServer` with
   ``mode="inprocess"`` (the test harness path) — plus one further server
   per standby when the spec carries a replica topology (chains created
   through the public ``replica_of`` tenant-create API);
2. creates the spec's tenants (backend x shards x params) over the v1
   surface and drives them with the existing open-loop load generator —
   through the replica-set client when ``read_from_standbys`` is set, so
   query traffic exercises the client's read load-balancing;
3. waits for the ingest pipelines to drain, scrapes ``GET /metrics``
   with the strict exposition parser and folds the per-stage ingest
   histograms into the report;
4. optionally runs the **saturation search**: a bisection over offered
   rate (fresh probe tenant per probe, fixed-duration looped stream)
   for the maximum rate that stays inside the latency SLO without
   shedding or falling behind the open-loop schedule.

Everything observed lands in one consolidated per-spec document; the
matrix run emits ``BENCH_capacity.json`` via :mod:`repro.bench.report`.
"""

from __future__ import annotations

import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.report import (
    build_report,
    histogram_summary_ms,
    stage_table_from_samples,
)
from repro.bench.spec import BenchSpec
from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import (
    ClientTarget,
    LoadGenConfig,
    LoadGenerator,
    LoadReport,
    MultiTenantLoadGenerator,
)
from repro.service.metrics import ServiceMetrics
from repro.service.obs import parse_prometheus_text
from repro.workloads.datasets import dataset_spec, load_dataset
from repro.workloads.updates import generate_update_sequence


class BenchRunError(RuntimeError):
    """A spec failed to execute (server never healthy, drain timeout, ...)."""


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ----------------------------------------------------------------------
# server handles: subprocess (default) and in-process (tests)
# ----------------------------------------------------------------------
class SubprocessServer:
    """One ``python -m repro serve`` child, torn down on :meth:`stop`."""

    def __init__(
        self,
        spec: BenchSpec,
        data_root: Optional[Path],
        startup_timeout: float = 30.0,
    ) -> None:
        self.port = _free_port()
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            str(self.port),
            "--epsilon",
            str(spec.epsilon),
            "--mu",
            str(spec.mu),
            "--rho",
            str(spec.rho),
            "--batch-size",
            "64",
            "--flush-interval",
            "0.01",
            "--queue-capacity",
            str(spec.queue_capacity),
        ]
        if data_root is not None:
            command += ["--data-root", str(data_root)]
        self._process = subprocess.Popen(
            command,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            ServiceClient.wait_until_healthy(
                "127.0.0.1", self.port, timeout=startup_timeout
            )
        except RuntimeError:
            self.stop()
            raise

    def stop(self) -> None:
        self._process.terminate()
        try:
            self._process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            self._process.kill()
            self._process.wait(timeout=10)


class InProcessServer:
    """A :class:`BackgroundServer` behind the same handle surface."""

    def __init__(self, spec: BenchSpec, data_root: Optional[Path]) -> None:
        from repro.core.config import StrCluParams
        from repro.service.engine import EngineConfig
        from repro.service.manager import EngineManager
        from repro.service.server import BackgroundServer

        params = StrCluParams(epsilon=spec.epsilon, mu=spec.mu, rho=spec.rho)
        manager = EngineManager(
            params,
            default_engine_config=EngineConfig(
                batch_size=64,
                flush_interval=0.01,
                queue_capacity=spec.queue_capacity,
            ),
            data_root=data_root,
            create_default=False,
        )
        self._server = BackgroundServer(manager).start()
        self.port = self._server.port

    def stop(self) -> None:
        manager = self._server.manager
        self._server.stop()
        manager.close()


ServerFactory = Callable[[BenchSpec, Optional[Path]], object]

_MODES: Dict[str, ServerFactory] = {
    "subprocess": SubprocessServer,
    "inprocess": InProcessServer,
}


# ----------------------------------------------------------------------
# saturation search
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProbeResult:
    """One fixed-duration probe at an offered rate (updates/second)."""

    rate: float
    offered: float
    achieved: float
    p99_ms: float
    rejected: int
    max_lag_s: float
    ok: bool
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "rate_updates_per_second": self.rate,
            "offered_updates_per_second": self.offered,
            "achieved_updates_per_second": self.achieved,
            "ingest_p99_ms": self.p99_ms,
            "rejected": self.rejected,
            "max_lag_s": self.max_lag_s,
            "sustainable": self.ok,
            "detail": self.detail,
        }


def search_max_sustainable(
    probe: Callable[[float], ProbeResult],
    hi: float,
    rounds: int,
    lo: float = 0.0,
) -> Tuple[float, bool, List[ProbeResult]]:
    """Bisection for the highest sustainable rate in ``(lo, hi]``.

    ``probe`` runs the workload at a rate and reports whether the SLO
    held.  Returns ``(max_sustainable, saturated, probes)``: when even
    ``hi`` is sustainable the search never saw saturation (``saturated``
    is False and the true maximum is >= the returned rate).
    """
    probes: List[ProbeResult] = []
    ceiling = probe(hi)
    probes.append(ceiling)
    if ceiling.ok:
        return hi, False, probes
    best = lo
    for _ in range(max(rounds - 1, 0)):
        mid = (best + hi) / 2.0
        result = probe(mid)
        probes.append(result)
        if result.ok:
            best = mid
        else:
            hi = mid
    return best, True, probes


# ----------------------------------------------------------------------
# the matrix runner
# ----------------------------------------------------------------------
@dataclass
class RunnerOptions:
    """Execution knobs orthogonal to the specs themselves."""

    mode: str = "subprocess"
    drain_timeout: float = 120.0
    replica_catchup_timeout: float = 30.0
    verbose: bool = True

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"mode must be one of {', '.join(sorted(_MODES))}; "
                f"got {self.mode!r}"
            )


@dataclass
class _Topology:
    """Everything booted for one spec, in teardown order."""

    primary: object
    standbys: List[object] = field(default_factory=list)
    tempdir: Optional[tempfile.TemporaryDirectory] = None

    @property
    def primary_endpoint(self) -> str:
        return f"127.0.0.1:{self.primary.port}"

    @property
    def standby_endpoints(self) -> List[str]:
        return [f"127.0.0.1:{server.port}" for server in self.standbys]

    def stop(self) -> None:
        for server in reversed(self.standbys):
            server.stop()
        self.primary.stop()
        if self.tempdir is not None:
            self.tempdir.cleanup()


class CapacityRunner:
    """Execute a spec list and assemble the consolidated capacity report."""

    def __init__(
        self,
        specs: Sequence[BenchSpec],
        options: Optional[RunnerOptions] = None,
    ) -> None:
        self.specs = list(specs)
        self.options = options if options is not None else RunnerOptions()

    # -- logging -------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.options.verbose:
            print(f"[bench] {message}", file=sys.stderr, flush=True)

    # -- public entry point --------------------------------------------
    def run(self, matrix_path: Optional[str] = None) -> Dict[str, object]:
        results: List[Dict[str, object]] = []
        for spec in self.specs:
            self._log(f"spec {spec.name}: starting")
            started = time.monotonic()
            try:
                entry = self._run_spec(spec)
                entry["elapsed_s"] = time.monotonic() - started
            except Exception as exc:  # a broken spec must not kill the matrix
                self._log(f"spec {spec.name}: FAILED ({exc})")
                entry = {
                    "name": spec.name,
                    "spec": spec.as_dict(),
                    "error": f"{type(exc).__name__}: {exc}",
                }
            results.append(entry)
        return build_report(results, matrix_path=matrix_path)

    # -- per-spec execution --------------------------------------------
    def _boot(self, spec: BenchSpec) -> _Topology:
        factory = _MODES[self.options.mode]
        tempdir: Optional[tempfile.TemporaryDirectory] = None
        data_root: Optional[Path] = None
        if spec.durable:
            tempdir = tempfile.TemporaryDirectory(prefix="repro-bench-")
            data_root = Path(tempdir.name)
        primary = factory(spec, data_root / "primary" if data_root else None)
        topology = _Topology(primary=primary, tempdir=tempdir)
        try:
            with ServiceClient("127.0.0.1", primary.port) as admin:
                for tenant in spec.tenant_names:
                    admin.create_tenant(
                        tenant,
                        backend=spec.backend,
                        shards=spec.shards,
                        queue_capacity=spec.queue_capacity,
                        params={
                            "epsilon": spec.epsilon,
                            "mu": spec.mu,
                            "rho": spec.rho,
                        },
                    )
            # replica chains: fanout chains of chain_depth standbys each,
            # every hop a separate server created via the public API
            for chain in range(spec.replicas.fanout if spec.replicas.chain_depth else 0):
                upstream = topology.primary_endpoint
                for depth in range(spec.replicas.chain_depth):
                    assert data_root is not None  # durable forced by the spec
                    standby = factory(
                        spec, data_root / f"standby-{chain}-{depth}"
                    )
                    topology.standbys.append(standby)
                    with ServiceClient("127.0.0.1", standby.port) as admin:
                        for tenant in spec.tenant_names:
                            admin.create_tenant(tenant, replica_of=upstream)
                    upstream = f"127.0.0.1:{standby.port}"
        except BaseException:
            topology.stop()
            raise
        return topology

    def _make_clients(
        self, spec: BenchSpec, topology: _Topology
    ) -> Tuple[List[ServiceClient], Dict[str, ClientTarget]]:
        """Per-tenant targets: replica-set clients when reads fan out."""
        clients: List[ServiceClient] = []
        targets: Dict[str, ClientTarget] = {}
        endpoints = [topology.primary_endpoint] + topology.standby_endpoints
        for tenant in spec.tenant_names:
            if topology.standbys and spec.replicas.read_from_standbys:
                client = ServiceClient(endpoints=endpoints, tenant=tenant)
            else:
                client = ServiceClient(
                    "127.0.0.1", topology.primary.port, tenant=tenant
                )
            clients.append(client)
            targets[tenant] = ClientTarget(client)
        return clients, targets

    def _stream(self, spec: BenchSpec, updates: Optional[int] = None):
        dataset = dataset_spec(spec.dataset)
        edges = load_dataset(spec.dataset)
        workload = generate_update_sequence(
            dataset.num_vertices,
            edges,
            updates if updates is not None else spec.updates,
            eta=0.2,
            seed=spec.seed,
        )
        return list(workload.all_updates())

    @staticmethod
    def _requests_rate(spec: BenchSpec, updates_per_second: float) -> float:
        """Offered updates/s -> loadgen requests/s (queries included)."""
        if updates_per_second <= 0:
            return 0.0
        updates_per_request = spec.ingest_batch * (1.0 - spec.query_ratio)
        return updates_per_second / max(updates_per_request, 1e-9)

    def _drive(
        self, spec: BenchSpec, topology: _Topology
    ) -> Tuple[Dict[str, LoadReport], List[ServiceMetrics], float]:
        stream = self._stream(spec)
        config = LoadGenConfig(
            rate=self._requests_rate(spec, spec.rate),
            ingest_batch=spec.ingest_batch,
            query_ratio=spec.query_ratio,
            query_size=spec.query_size,
            seed=spec.seed,
        )
        clients, targets = self._make_clients(spec, topology)
        started = time.monotonic()
        try:
            if spec.tenants == 1:
                tenant = spec.tenant_names[0]
                generator = LoadGenerator(targets[tenant], stream, config=config)
                reports = {tenant: generator.run()}
                metrics = [generator.metrics]
            else:
                multi = MultiTenantLoadGenerator(targets, stream, config=config)
                reports = multi.run()
                metrics = [g.metrics for g in multi.generators.values()]
        finally:
            for client in clients:
                client.close()
        return reports, metrics, time.monotonic() - started

    def _wait_drained(self, spec: BenchSpec, topology: _Topology) -> Dict[str, int]:
        """Block until every benched tenant's queue is empty and stable."""
        deadline = time.monotonic() + self.options.drain_timeout
        previous: Optional[Tuple[Tuple[int, int], ...]] = None
        with ServiceClient("127.0.0.1", topology.primary.port) as admin:
            while time.monotonic() < deadline:
                rows = {row["tenant"]: row for row in admin.list_tenants()}
                state = tuple(
                    (
                        int(rows.get(t, {}).get("queue_depth", 1)),
                        int(rows.get(t, {}).get("applied", -1)),
                    )
                    for t in spec.tenant_names
                )
                if (
                    all(depth == 0 for depth, _ in state)
                    and all(applied >= 0 for _, applied in state)
                    and state == previous
                ):
                    return {
                        tenant: applied
                        for tenant, (_, applied) in zip(spec.tenant_names, state)
                    }
                previous = state
                time.sleep(0.2)
        raise BenchRunError(
            f"spec {spec.name}: ingest never drained within "
            f"{self.options.drain_timeout:.0f}s (last state {previous})"
        )

    def _replication_block(
        self, spec: BenchSpec, topology: _Topology, applied: Dict[str, int]
    ) -> Optional[Dict[str, object]]:
        if not topology.standbys:
            return None
        deadline = time.monotonic() + self.options.replica_catchup_timeout
        standbys: List[Dict[str, object]] = []
        for endpoint, server in zip(
            topology.standby_endpoints, topology.standbys
        ):
            entry: Dict[str, object] = {"endpoint": endpoint, "tenants": {}}
            for tenant in spec.tenant_names:
                caught_up = False
                replicated = -1
                with ServiceClient(
                    "127.0.0.1", server.port, tenant=tenant
                ) as client:
                    while time.monotonic() < deadline:
                        stats = client.stats()
                        block = stats.get("replication", {})
                        shards = block.get("shards", [])
                        replicated = sum(
                            int(row.get("position", 0)) for row in shards
                        )
                        if int(stats.get("applied", -1)) >= applied[tenant]:
                            caught_up = True
                            break
                        time.sleep(0.2)
                entry["tenants"][tenant] = {
                    "caught_up": caught_up,
                    "replicated_position": replicated,
                }
            standbys.append(entry)
        return {
            "chain_depth": spec.replicas.chain_depth,
            "fanout": spec.replicas.fanout,
            "read_from_standbys": spec.replicas.read_from_standbys,
            "standbys": standbys,
        }

    def _scrape_stages(
        self, spec: BenchSpec, topology: _Topology
    ) -> Dict[str, Dict[str, float]]:
        with ServiceClient("127.0.0.1", topology.primary.port) as admin:
            text = admin.metrics_text()
        _types, samples = parse_prometheus_text(text)
        return stage_table_from_samples(samples, spec.tenant_names)

    # -- saturation ----------------------------------------------------
    def _probe(
        self,
        spec: BenchSpec,
        topology: _Topology,
        stream,
        rate: float,
        index: int,
    ) -> ProbeResult:
        tenant = f"satprobe{index}"
        lag_budget = max(0.25, 0.1 * spec.probe_seconds)
        with ServiceClient(
            "127.0.0.1", topology.primary.port, tenant=tenant
        ) as client:
            client.create_tenant(
                tenant,
                backend=spec.backend,
                shards=spec.shards,
                queue_capacity=spec.queue_capacity,
                params={
                    "epsilon": spec.epsilon,
                    "mu": spec.mu,
                    "rho": spec.rho,
                },
            )
            try:
                generator = LoadGenerator(
                    ClientTarget(client),
                    stream,
                    config=LoadGenConfig(
                        rate=self._requests_rate(spec, rate),
                        ingest_batch=spec.ingest_batch,
                        query_ratio=spec.query_ratio,
                        query_size=spec.query_size,
                        seed=spec.seed,
                        max_seconds=spec.probe_seconds,
                        loop=True,
                    ),
                )
                report = generator.run()
            finally:
                try:
                    client.delete_tenant(tenant)
                except (OSError, ServiceError):  # pragma: no cover - best effort
                    pass
        p99_ms = generator.metrics.ingest.percentile(99) * 1e3
        reject_ratio = report.updates_rejected / max(report.updates_sent, 1)
        problems: List[str] = []
        if reject_ratio > 0.01:
            problems.append(f"shed {reject_ratio:.1%} of updates")
        if report.max_lag_s > lag_budget:
            problems.append(
                f"fell {report.max_lag_s:.2f}s behind the open-loop schedule"
            )
        if p99_ms > spec.slo_p99_ms:
            problems.append(
                f"ingest p99 {p99_ms:.1f}ms over the {spec.slo_p99_ms:g}ms SLO"
            )
        if report.errors:
            problems.append(f"{len(report.errors)} request errors")
        result = ProbeResult(
            rate=rate,
            offered=report.offered_updates_per_second,
            achieved=report.accepted_updates_per_second,
            p99_ms=p99_ms,
            rejected=report.updates_rejected,
            max_lag_s=report.max_lag_s,
            ok=not problems,
            detail="; ".join(problems),
        )
        self._log(
            f"spec {spec.name}: probe @{rate:.0f} upd/s -> "
            f"{'ok' if result.ok else result.detail}"
        )
        return result

    def _saturation(
        self, spec: BenchSpec, topology: _Topology, achieved: float
    ) -> Dict[str, object]:
        stream = self._stream(spec, updates=min(spec.updates, 400))
        hi = max(achieved, 1.0) * 2.0
        counter = {"n": 0}

        def probe(rate: float) -> ProbeResult:
            counter["n"] += 1
            return self._probe(spec, topology, stream, rate, counter["n"])

        best, saturated, probes = search_max_sustainable(
            probe, hi=hi, rounds=spec.saturation_rounds
        )
        return {
            "slo_p99_ms": spec.slo_p99_ms,
            "probe_seconds": spec.probe_seconds,
            "search_ceiling_updates_per_second": hi,
            "saturated": saturated,
            "max_sustainable_updates_per_second": best,
            "probes": [result.as_dict() for result in probes],
        }

    # -- assembling one spec entry -------------------------------------
    def _run_spec(self, spec: BenchSpec) -> Dict[str, object]:
        topology = self._boot(spec)
        try:
            reports, metrics, wall = self._drive(spec, topology)
            applied = self._wait_drained(spec, topology)
            merged = ServiceMetrics.merged(metrics)
            sent = sum(r.updates_sent for r in reports.values())
            accepted = sum(r.updates_accepted for r in reports.values())
            rejected = sum(r.updates_rejected for r in reports.values())
            max_lag = max((r.max_lag_s for r in reports.values()), default=0.0)
            entry: Dict[str, object] = {
                "name": spec.name,
                "spec": spec.as_dict(),
                "ingest": {
                    "updates_sent": sent,
                    "updates_accepted": accepted,
                    "updates_rejected": rejected,
                    "updates_applied": sum(applied.values()),
                    "wall_seconds": wall,
                    "offered_updates_per_second": sent / wall if wall else 0.0,
                    "achieved_updates_per_second": (
                        accepted / wall if wall else 0.0
                    ),
                    "max_lag_s": max_lag,
                    **histogram_summary_ms(merged.ingest),
                },
                "query": histogram_summary_ms(merged.query),
                "stages": self._scrape_stages(spec, topology),
            }
            replication = self._replication_block(spec, topology, applied)
            if replication is not None:
                entry["replication"] = replication
            if spec.saturation_search:
                entry["saturation"] = self._saturation(
                    spec,
                    topology,
                    float(entry["ingest"]["achieved_updates_per_second"]),
                )
            self._log(
                f"spec {spec.name}: done "
                f"({entry['ingest']['achieved_updates_per_second']:.0f} upd/s)"
            )
            return entry
        finally:
            topology.stop()


def run_matrix(
    specs: Sequence[BenchSpec],
    options: Optional[RunnerOptions] = None,
    matrix_path: Optional[str] = None,
) -> Dict[str, object]:
    """Convenience wrapper: one call from the CLI and the tests."""
    return CapacityRunner(specs, options=options).run(matrix_path=matrix_path)
