"""Declarative capacity benchmarking: spec matrix -> run -> report -> gate.

The single way perf claims are made and enforced in this repository:

* :mod:`repro.bench.spec` — the JSON/TOML matrix file format and its
  expansion into validated :class:`BenchSpec` bundles;
* :mod:`repro.bench.runner` — boots real servers per spec (replica
  chains included), drives them with the open-loop load generator,
  scrapes ``/metrics`` and runs the max-sustainable-rate search;
* :mod:`repro.bench.report` — host fingerprint, percentile tables and
  the consolidated ``BENCH_capacity.json`` document;
* :mod:`repro.bench.gate` — ``benchmarks/floors.json`` floors/ceilings
  with tolerance bands, evaluated against any ``BENCH_*.json`` report.

CLI: ``repro bench --matrix benchmarks/capacity_matrix.json`` and
``repro bench gate BENCH_*.json --floors benchmarks/floors.json``.
"""

from repro.bench.gate import (
    FLOORS_SCHEMA_VERSION,
    CheckResult,
    FloorsError,
    GateOutcome,
    evaluate_report,
    gate_reports,
    load_floors,
    resolve_metric,
    validate_floors,
)
from repro.bench.report import (
    SCHEMA_VERSION,
    build_report,
    host_fingerprint,
    percentile_from_buckets,
    render_summary,
    summary_rows,
)
from repro.bench.runner import (
    BenchRunError,
    CapacityRunner,
    ProbeResult,
    RunnerOptions,
    run_matrix,
    search_max_sustainable,
)
from repro.bench.spec import (
    BenchSpec,
    ReplicaTopology,
    SpecError,
    expand_matrix,
    load_matrix,
    select_specs,
)

__all__ = [
    "BenchRunError",
    "BenchSpec",
    "CapacityRunner",
    "CheckResult",
    "FLOORS_SCHEMA_VERSION",
    "FloorsError",
    "GateOutcome",
    "ProbeResult",
    "ReplicaTopology",
    "RunnerOptions",
    "SCHEMA_VERSION",
    "SpecError",
    "build_report",
    "evaluate_report",
    "expand_matrix",
    "gate_reports",
    "host_fingerprint",
    "load_floors",
    "load_matrix",
    "percentile_from_buckets",
    "render_summary",
    "resolve_metric",
    "run_matrix",
    "search_max_sustainable",
    "select_specs",
    "summary_rows",
    "validate_floors",
]
