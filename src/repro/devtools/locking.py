"""REPRO201/REPRO601/REPRO602 — lock discipline and thread hygiene.

**REPRO201 guarded-field** enforces the ``# guarded-by: <lock>``
annotation contract: a field whose ``__init__`` assignment carries the
annotation (inline, or on a comment line directly above) may only be read
or written

* inside a ``with self.<lock>:`` block of the same class,
* inside ``__init__`` itself (construction is single-threaded), or
* inside a method whose name ends in ``_locked`` (the project convention
  for helpers documented as "caller holds the lock").

Accesses through other instances (``other._lock`` patterns like histogram
merges) are outside the checker's model and are not flagged — the
annotation contract covers ``self`` accesses only.

**REPRO601 thread-hygiene/naming**: every ``threading.Thread(...)``
construction (and every ``super().__init__(...)`` of a ``Thread``
subclass) must pass an explicit ``name=`` — anonymous ``Thread-N`` names
make hang dumps and log lines unattributable.

**REPRO602 thread-hygiene/join**: a class that stores a thread on an
attribute (``self.x = threading.Thread(...)``) must ``self.x.join()``
somewhere in the class — the close/stop path must reap what it started.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.devtools.core import Checker, Finding, SourceFile

GUARDED_CODE = "REPRO201"
THREAD_NAME_CODE = "REPRO601"
THREAD_JOIN_CODE = "REPRO602"


def _self_attr(node: ast.AST) -> Optional[str]:
    """``x`` for a ``self.x`` attribute node, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _with_held_locks(source: SourceFile, node: ast.AST) -> Set[str]:
    """Names of every ``self.<lock>`` held by enclosing ``with`` blocks."""
    held: Set[str] = set()
    for ancestor in source.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                lock = _self_attr(item.context_expr)
                if lock is not None:
                    held.add(lock)
    return held


def _enclosing_functions(source: SourceFile, node: ast.AST) -> List[str]:
    return [
        ancestor.name
        for ancestor in source.ancestors(node)
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


class GuardedFieldChecker(Checker):
    name = "guarded-field"
    codes = (GUARDED_CODE,)
    description = (
        "fields annotated '# guarded-by: <lock>' in __init__ must only be "
        "touched under 'with self.<lock>' (or in *_locked methods)"
    )
    scope = ()  # driven entirely by annotations, so any file qualifies

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    def _guarded_fields(self, source: SourceFile, init: ast.AST) -> Dict[str, str]:
        """``field -> lock`` from annotated ``self.x = ...`` lines."""
        guarded: Dict[str, str] = {}
        for stmt in ast.walk(init):
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            else:
                continue
            lock = source.guarded_by(stmt.lineno)
            if lock is None:
                continue
            for target in targets:
                field = _self_attr(target)
                if field is not None:
                    guarded[field] = lock
        return guarded

    def _check_class(
        self, source: SourceFile, klass: ast.ClassDef
    ) -> List[Finding]:
        init = next(
            (
                stmt
                for stmt in klass.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return []
        guarded = self._guarded_fields(source, init)
        if not guarded:
            return []
        findings: List[Finding] = []
        for node in ast.walk(klass):
            field = _self_attr(node)
            if field is None or field not in guarded:
                continue
            lock = guarded[field]
            functions = _enclosing_functions(source, node)
            if not functions:
                continue
            if "__init__" in functions:
                continue  # construction is single-threaded
            if any(name.endswith("_locked") for name in functions):
                continue  # convention: caller documentedly holds the lock
            if lock in _with_held_locks(source, node):
                continue
            findings.append(
                self.finding(
                    source,
                    node,
                    GUARDED_CODE,
                    f"self.{field} is guarded-by {lock} but accessed "
                    f"outside 'with self.{lock}' "
                    f"(in {klass.name}.{functions[0]})",
                )
            )
        return findings


def _is_thread_subclass(klass: ast.ClassDef) -> bool:
    for base in klass.bases:
        if isinstance(base, ast.Name) and base.id == "Thread":
            return True
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "Thread"
            and isinstance(base.value, ast.Name)
            and base.value.id == "threading"
        ):
            return True
    return False


def _is_thread_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "Thread":
        return True
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "Thread"
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
    )


def _is_super_init(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "__init__"
        and isinstance(func.value, ast.Call)
        and isinstance(func.value.func, ast.Name)
        and func.value.func.id == "super"
    )


def _has_keyword(node: ast.Call, name: str) -> bool:
    return any(keyword.arg == name for keyword in node.keywords)


class ThreadHygieneChecker(Checker):
    name = "thread-hygiene"
    codes = (THREAD_NAME_CODE, THREAD_JOIN_CODE)
    description = (
        "threads must be constructed with an explicit name=, and a class "
        "that stores a thread on self must join it somewhere"
    )
    scope = ()

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        thread_classes = {
            node for node in ast.walk(source.tree) if isinstance(node, ast.ClassDef)
        }
        # REPRO601: anonymous Thread constructions
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_thread_call(node) and not _has_keyword(node, "name"):
                findings.append(
                    self.finding(
                        source,
                        node,
                        THREAD_NAME_CODE,
                        "threading.Thread(...) without an explicit name=; "
                        "anonymous Thread-N names make stack dumps "
                        "unattributable",
                    )
                )
        for klass in thread_classes:
            if not _is_thread_subclass(klass):
                continue
            for node in ast.walk(klass):
                if (
                    isinstance(node, ast.Call)
                    and _is_super_init(node)
                    and not _has_keyword(node, "name")
                ):
                    findings.append(
                        self.finding(
                            source,
                            node,
                            THREAD_NAME_CODE,
                            f"{klass.name} is a Thread subclass; "
                            "super().__init__ must pass an explicit name=",
                        )
                    )
        # REPRO602: threads stored on self must be joined in the class
        for klass in thread_classes:
            assignments: Dict[str, ast.Assign] = {}
            joined: Set[str] = set()
            for node in ast.walk(klass):
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call
                ) and _is_thread_call(node.value):
                    for target in node.targets:
                        field = _self_attr(target)
                        if field is not None:
                            assignments.setdefault(field, node)
                if isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr == "join"
                        and _self_attr(func.value) is not None
                    ):
                        joined.add(func.value.attr)  # type: ignore[union-attr]
            for field, node in assignments.items():
                if field not in joined:
                    findings.append(
                        self.finding(
                            source,
                            node,
                            THREAD_JOIN_CODE,
                            f"{klass.name} stores a thread on self.{field} "
                            f"but never joins it; close()/stop() must reap "
                            "what start() spawned",
                        )
                    )
        return findings
