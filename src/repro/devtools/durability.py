"""REPRO301 — durable writes only through ``write_durable``.

Every persisted state file the recovery path parses — snapshots, shard /
replication / standby manifests, seeds — must be written with the one
shared discipline in :func:`repro.persistence.snapshot.write_durable`
(tmp file + fsync + atomic rename): a crash mid-write must leave the old
whole file or the new whole file, never a torn one that bricks recovery.

This checker flags, across ``repro.persistence`` and ``repro.service``:

* ``open(path, "w")`` / ``path.open("w")`` (any mode starting with ``w``),
* ``os.rename`` / ``os.replace``,
* ``json.dump`` (the to-file variant; ``json.dumps`` is fine),
* ``.write_text(...)`` / ``.write_bytes(...)``,

everywhere except inside ``write_durable`` itself.  Append-mode opens are
not flagged: the WAL's append+fsync protocol (``UpdateLogWriter``) is its
own, separately-reviewed durability discipline, as is the decision log's
best-effort JSONL mirror.  Intentional exceptions (e.g. renaming an
already-fsynced WAL segment into its retained name) carry an inline
``# repro: allow[REPRO301]`` with a one-line justification.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.devtools.core import Checker, Finding, SourceFile

CODE = "REPRO301"

#: The one function allowed to open-for-write and rename: the primitive.
EXEMPT_FUNCTIONS = frozenset({"write_durable"})


def _mode_argument(node: ast.Call) -> Optional[ast.expr]:
    """The mode argument of an ``open`` call (builtin or ``Path.open``)."""
    func = node.func
    position = 1 if isinstance(func, ast.Name) else 0
    if len(node.args) > position:
        return node.args[position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


def _violation_message(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open" or (
        isinstance(func, ast.Attribute) and func.attr == "open"
    ):
        mode = _mode_argument(node)
        if (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and mode.value.startswith(("w", "x"))
        ):
            return (
                f"bare open(..., {mode.value!r}) writes a state file "
                "non-atomically; persist through write_durable"
            )
        return None
    if isinstance(func, ast.Attribute):
        if func.attr in {"rename", "replace"} and isinstance(
            func.value, ast.Name
        ) and func.value.id == "os":
            return (
                f"os.{func.attr} outside write_durable: renames must be "
                "part of the tmp+fsync+rename discipline"
            )
        if func.attr in {"write_text", "write_bytes"}:
            return (
                f".{func.attr}(...) writes a state file non-atomically; "
                "persist through write_durable"
            )
        if func.attr == "dump" and isinstance(
            func.value, ast.Name
        ) and func.value.id == "json":
            return (
                "json.dump to a file handle is a non-durable write; "
                "json.dumps + write_durable instead"
            )
    return None


class DurableWriteChecker(Checker):
    name = "durable-write"
    codes = (CODE,)
    description = (
        "state files in repro.persistence/repro.service are written only "
        "via write_durable (tmp + fsync + rename)"
    )
    scope = ("/repro/persistence/", "/repro/service/")

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            message = _violation_message(node)
            if message is None:
                continue
            enclosing = [
                ancestor.name
                for ancestor in source.ancestors(node)
                if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            if any(name in EXEMPT_FUNCTIONS for name in enclosing):
                continue
            findings.append(self.finding(source, node, CODE, message))
        return findings
