"""Core of the ``repro check`` static-analysis suite.

The service stack's correctness rests on a handful of *project invariants*
— WAL-before-apply, durable writes only via ``write_durable``, no blocking
calls on the asyncio loop, monotonic-clock-only duration arithmetic,
lock-guarded shared state — that no general-purpose linter knows about.
This module supplies the shared machinery the project-specific checkers in
:mod:`repro.devtools` build on:

* :class:`SourceFile` — one parsed file: source text, AST, a parent map
  for ancestor walks, and the parsed ``# repro: allow[CODE]`` suppression
  comments.  Instances are cached per ``(path, mtime)`` so a run over the
  tree parses each file once no matter how many checkers visit it.
* :class:`Finding` — one diagnostic: ``path:line:col CODE message``.
* :class:`Checker` — the protocol every checker implements (``name``, the
  ``codes`` it can emit, a path ``scope`` and a ``check(source)`` hook).
* :func:`run_checks` — the driver: collect files, apply checker scoping
  and ``--select`` filtering, drop suppressed findings, and return a
  :class:`CheckReport` the CLI renders as human or JSON output.

Suppression syntax (documented in docs/DEVTOOLS.md): a finding is silenced
by ``# repro: allow[CODE] <one-line justification>`` on the flagged line,
or on a comment-only line directly above it.  ``allow[*]`` silences every
code on that line; unknown codes silence nothing.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Matches one suppression comment; group 1 is the comma-separated codes.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s-]+)\]")

#: Matches one guarded-field annotation; group 1 is the lock attribute.
_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic, sortable into (path, line, col, code) order."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class SourceFile:
    """One parsed Python file plus the lookups every checker needs."""

    def __init__(self, path: Path, text: str) -> None:
        self.path = path
        self.display = _display_path(path)
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.Module = ast.parse(text, filename=str(path))
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._allows: Optional[Dict[int, Set[str]]] = None

    # -- AST ancestry ---------------------------------------------------
    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """``child node -> parent node`` over the whole tree (lazy)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestors, nearest first, up to the module."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    # -- suppressions ---------------------------------------------------
    @property
    def allows(self) -> Dict[int, Set[str]]:
        """``line number -> set of allowed codes`` (``*`` allows all)."""
        if self._allows is None:
            allows: Dict[int, Set[str]] = {}
            for lineno, line in enumerate(self.lines, start=1):
                match = _ALLOW_RE.search(line)
                if match:
                    codes = {
                        token.strip()
                        for token in match.group(1).split(",")
                        if token.strip()
                    }
                    allows[lineno] = codes
            self._allows = allows
        return self._allows

    def suppressed(self, line: int, code: str) -> bool:
        """True when ``code`` is allowed on ``line`` — by a suppression
        comment on the line itself or in the contiguous block of
        comment-only lines directly above it."""
        def allowed_on(candidate: int) -> bool:
            codes = self.allows.get(candidate, ())
            return "*" in codes or code in codes

        if allowed_on(line):
            return True
        candidate = line - 1
        while candidate >= 1 and self.lines[candidate - 1].lstrip().startswith("#"):
            if allowed_on(candidate):
                return True
            candidate -= 1
        return False

    # -- guarded-by annotations ----------------------------------------
    def guarded_by(self, line: int) -> Optional[str]:
        """The ``# guarded-by: <lock>`` annotation covering ``line``.

        Looked up on the line itself first, then on a comment-only line
        directly above (for assignments too long to annotate inline).
        """
        for candidate in (line, line - 1):
            if not 1 <= candidate <= len(self.lines):
                continue
            text = self.lines[candidate - 1]
            if candidate != line and not text.lstrip().startswith("#"):
                continue
            match = _GUARDED_BY_RE.search(text)
            if match:
                return match.group(1)
        return None


def _display_path(path: Path) -> str:
    """Repo-relative display path when possible, else the given path."""
    resolved = path.resolve()
    for base in (Path.cwd(), *Path.cwd().parents):
        try:
            return str(resolved.relative_to(base))
        except ValueError:
            continue
    return str(path)


#: ``resolved path -> (mtime_ns, SourceFile)`` — one parse per file per run
#: (and across runs in one process, for the test suite's repeated calls).
_SOURCE_CACHE: Dict[Path, Tuple[int, SourceFile]] = {}


def load_source(path) -> SourceFile:
    """Parse ``path`` (cached by modification time)."""
    resolved = Path(path).resolve()
    mtime_ns = resolved.stat().st_mtime_ns
    cached = _SOURCE_CACHE.get(resolved)
    if cached is not None and cached[0] == mtime_ns:
        return cached[1]
    source = SourceFile(resolved, resolved.read_text(encoding="utf-8"))
    _SOURCE_CACHE[resolved] = (mtime_ns, source)
    return source


class Checker:
    """Base class for one project-invariant checker.

    Subclasses set ``name`` (the ``--select`` alias), ``codes`` (every
    code they can emit), ``description`` and — when the invariant only
    applies to part of the tree — ``scope``: posix path fragments; a file
    under ``src/repro`` is only checked when its path contains one of
    them.  Files *outside* the package (explicit CLI paths, test
    fixtures) are always in scope, so fixtures exercise every checker.
    """

    name: str = ""
    codes: Tuple[str, ...] = ()
    description: str = ""
    scope: Tuple[str, ...] = ()

    def applies_to(self, source: SourceFile) -> bool:
        posix = source.path.as_posix()
        if "/repro/" not in posix:
            return True
        if not self.scope:
            return True
        return any(fragment in posix for fragment in self.scope)

    def check(self, source: SourceFile) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self, source: SourceFile, node: ast.AST, code: str, message: str
    ) -> Finding:
        return Finding(
            path=source.display,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


@dataclass
class CheckReport:
    """The outcome of one :func:`run_checks` run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def render_human(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.extend(f"error: {error}" for error in self.errors)
        lines.append(
            f"{len(self.findings)} finding(s) "
            f"({len(self.suppressed)} suppressed) "
            f"in {self.files_checked} file(s)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "files_checked": self.files_checked,
                "findings": [finding.as_dict() for finding in self.findings],
                "suppressed": [finding.as_dict() for finding in self.suppressed],
                "errors": list(self.errors),
            },
            indent=2,
        )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through verbatim)."""
    for path in paths:
        path = Path(path)
        if path.is_file():
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" in candidate.parts:
                    continue
                yield candidate


def select_checkers(
    checkers: Sequence[Checker], select: Optional[Iterable[str]]
) -> Tuple[List[Checker], Optional[Set[str]]]:
    """Resolve ``--select`` tokens (names or codes) to checkers + codes.

    Returns the selected checkers and, when any token was a *code*, the
    set of codes findings are additionally filtered to (a name token
    admits all of that checker's codes).
    """
    if not select:
        return list(checkers), None
    tokens = {token.strip() for token in select if token.strip()}
    picked: List[Checker] = []
    codes: Set[str] = set()
    unknown = set(tokens)
    for checker in checkers:
        hit = False
        if checker.name in tokens:
            hit = True
            codes.update(checker.codes)
            unknown.discard(checker.name)
        for code in checker.codes:
            if code in tokens:
                hit = True
                codes.add(code)
                unknown.discard(code)
        if hit:
            picked.append(checker)
    if unknown:
        raise ValueError(
            f"unknown check selector(s): {', '.join(sorted(unknown))}"
        )
    return picked, codes


def run_checks(
    paths: Sequence[Path],
    checkers: Sequence[Checker],
    select: Optional[Iterable[str]] = None,
) -> CheckReport:
    """Run ``checkers`` over every Python file under ``paths``."""
    picked, codes = select_checkers(checkers, select)
    report = CheckReport()
    for path in iter_python_files(paths):
        try:
            source = load_source(path)
        except (OSError, SyntaxError, ValueError) as exc:
            report.errors.append(f"{path}: {exc}")
            continue
        report.files_checked += 1
        for checker in picked:
            if not checker.applies_to(source):
                continue
            for finding in checker.check(source):
                if codes is not None and finding.code not in codes:
                    continue
                if source.suppressed(finding.line, finding.code):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
    report.findings.sort()
    report.suppressed.sort()
    return report
