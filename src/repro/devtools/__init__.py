"""``repro check`` — the project-invariant static-analysis suite.

The service stack's invariants (monotonic-clock discipline, lock-guarded
state, durable writes, asyncio hygiene, structured errors, thread
lifecycle) are enforced mechanically on every change instead of being
re-derived by reviewers — the same spirit in which the DynStrClu
maintainer enforces its clustering invariants incrementally under
updates.  See docs/DEVTOOLS.md for the check codes, the ``# guarded-by:``
annotation convention and the ``# repro: allow[CODE]`` suppression
syntax.

Check codes
-----------
========== ================ ==================================================
REPRO101   monotonic        ``time.time()`` outside the event-timestamp
                            allowlist in ``repro.service``
REPRO201   guarded-field    ``# guarded-by:`` field touched outside its lock
REPRO301   durable-write    state file written outside ``write_durable``
REPRO401   async-blocking   blocking call on the asyncio loop in ``server.py``
REPRO501   error-envelope   bare builtin exception raised in a route handler
REPRO601   thread-hygiene   ``threading.Thread`` without an explicit ``name=``
REPRO602   thread-hygiene   thread stored on ``self`` but never joined
REPRO701   span-hygiene     tracer ``span()`` opened outside a ``with``
========== ================ ==================================================
"""

from __future__ import annotations

from typing import List

from repro.devtools.asyncio_hygiene import AsyncBlockingChecker, ErrorEnvelopeChecker
from repro.devtools.clocks import MonotonicDisciplineChecker
from repro.devtools.core import (
    Checker,
    CheckReport,
    Finding,
    SourceFile,
    iter_python_files,
    load_source,
    run_checks,
    select_checkers,
)
from repro.devtools.durability import DurableWriteChecker
from repro.devtools.locking import GuardedFieldChecker, ThreadHygieneChecker
from repro.devtools.spans import SpanHygieneChecker

__all__ = [
    "Checker",
    "CheckReport",
    "Finding",
    "SourceFile",
    "all_checkers",
    "iter_python_files",
    "load_source",
    "run_checks",
    "select_checkers",
    "MonotonicDisciplineChecker",
    "GuardedFieldChecker",
    "DurableWriteChecker",
    "AsyncBlockingChecker",
    "ErrorEnvelopeChecker",
    "ThreadHygieneChecker",
    "SpanHygieneChecker",
]


def all_checkers() -> List[Checker]:
    """Fresh instances of every project checker, in code order."""
    return [
        MonotonicDisciplineChecker(),
        GuardedFieldChecker(),
        DurableWriteChecker(),
        AsyncBlockingChecker(),
        ErrorEnvelopeChecker(),
        ThreadHygieneChecker(),
        SpanHygieneChecker(),
    ]
