"""REPRO101 — monotonic-clock discipline for the service layer.

Duration arithmetic anywhere in ``repro.service`` must use the monotonic
clocks (``time.monotonic`` for schedules and deadlines,
``time.perf_counter`` for latencies): wall-clock time jumps under NTP
steps and DST and would corrupt retry horizons, watchdog quorums and
latency histograms.  ``time.time()`` is legal in exactly one role — an
**event timestamp** recorded for humans or persisted documents — and only
when assigned to one of the pinned timestamp names below.  Anything else
is a finding; genuinely new timestamp fields extend the pinned allowlist
(a deliberate, reviewed act), they do not silently slip through.

This checker generalises (and replaces the engine of) the original
hand-rolled audit in ``tests/service/test_time_sources.py``; that test is
now a thin wrapper invoking it over every service module.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.devtools.core import Checker, Finding, SourceFile

CODE = "REPRO101"

#: Assignment targets (``x = time.time()`` / ``self.x = time.time()`` /
#: dataclass ``x: float = field(default_factory=time.time)``) allowed to
#: carry a wall-clock *event timestamp*.
ALLOWED_TIMESTAMP_NAMES = frozenset({"published_at", "last_applied_at"})

#: Dict keys (``{"ts": time.time()}``) allowed to carry one — the decision
#: log's post-mortem timestamps.
ALLOWED_TIMESTAMP_KEYS = frozenset({"ts", "published_at", "last_applied_at"})


def _is_wall_clock(node: ast.AST) -> bool:
    """True for a ``time.time`` attribute reference."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "time"
        and isinstance(node.value, ast.Name)
        and node.value.id == "time"
    )


def _target_names(node: ast.AST) -> List[str]:
    """Plain / attribute names assigned by one Assign/AnnAssign target."""
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    if isinstance(node, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in node.elts:
            names.extend(_target_names(element))
        return names
    return []


def _is_allowed(source: SourceFile, node: ast.Attribute) -> bool:
    """True when the ``time.time`` reference is a pinned event timestamp."""
    previous: ast.AST = node
    for ancestor in source.ancestors(node):
        if isinstance(ancestor, ast.Dict):
            for key, value in zip(ancestor.keys, ancestor.values):
                if value is previous and isinstance(key, ast.Constant):
                    if key.value in ALLOWED_TIMESTAMP_KEYS:
                        return True
        if isinstance(ancestor, ast.Assign):
            names = [
                name
                for target in ancestor.targets
                for name in _target_names(target)
            ]
            if set(names) & ALLOWED_TIMESTAMP_NAMES:
                return True
        if isinstance(ancestor, ast.AnnAssign):
            if set(_target_names(ancestor.target)) & ALLOWED_TIMESTAMP_NAMES:
                return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # don't leak an allowance out of the enclosing statement's
            # function (an allowed assignment can't be above a def)
            return False
        previous = ancestor
    return False


def wall_clock_references(
    source: SourceFile,
) -> Tuple[List[ast.Attribute], List[ast.Attribute]]:
    """All ``time.time`` references, split into (violations, allowed)."""
    violations: List[ast.Attribute] = []
    allowed: List[ast.Attribute] = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "time" and any(
                alias.name == "time" for alias in node.names
            ):
                # ``from time import time`` hides the clock kind at every
                # call site; treated as a violation at the import itself
                fake = ast.Attribute(
                    value=ast.Name(id="time", ctx=ast.Load()),
                    attr="time",
                    ctx=ast.Load(),
                )
                fake.lineno = node.lineno
                fake.col_offset = node.col_offset
                violations.append(fake)
            continue
        if not _is_wall_clock(node):
            continue
        if _is_allowed(source, node):
            allowed.append(node)
        else:
            violations.append(node)
    return violations, allowed


class MonotonicDisciplineChecker(Checker):
    name = "monotonic"
    codes = (CODE,)
    description = (
        "time.time() is forbidden in repro.service outside the pinned "
        "event-timestamp allowlist; use time.monotonic/perf_counter"
    )
    scope = ("/repro/service/",)

    def check(self, source: SourceFile) -> List[Finding]:
        violations, _allowed = wall_clock_references(source)
        return [
            self.finding(
                source,
                node,
                CODE,
                "wall-clock time.time() in duration-sensitive code; use "
                "time.monotonic (schedules) or time.perf_counter "
                "(latencies) — event timestamps belong to the pinned "
                f"allowlist {sorted(ALLOWED_TIMESTAMP_NAMES)}",
            )
            for node in violations
        ]
