"""REPRO401/REPRO501 — asyncio-loop hygiene for the HTTP server.

**REPRO401 async-blocking**: an ``async def`` in ``server.py`` runs on
the event loop; one blocking call there stalls *every* connection.  The
sanctioned escape hatch is the executor hop —
``await loop.run_in_executor(None, self._dispatch, ...)`` — where the
blocking callable is passed *by reference* (and therefore is not a call
the checker sees).  Direct calls to known-blocking names inside an async
function are findings: the dispatchers (which may take engine locks,
flush WALs, or replay history), file I/O, ``time.sleep``, and the
blocking engine/manager mutations.

**REPRO501 error-envelope**: every error a v1 route handler surfaces
must travel as the structured envelope ``{"error": {code, message,
retryable}}``, which means handlers raise the project's error families
(``BadRequest``, ``_ProtocolError``, the ``ServiceError`` /
``EngineError`` / tenant hierarchies) — never bare builtin exceptions,
which the dispatcher cannot map to an envelope and a client cannot
pattern-match.  Lifecycle code (the async start/stop surface and the
embedding ``BackgroundServer``) is exempt: its errors face the embedding
process, not HTTP clients.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.devtools.core import Checker, Finding, SourceFile

ASYNC_CODE = "REPRO401"
ENVELOPE_CODE = "REPRO501"

#: Method/function names that block (or may block) when called directly.
BLOCKING_ATTRS = frozenset(
    {
        "_dispatch",
        "_dispatch_v1",
        "_dispatch_legacy",
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "fsync",
        "load_snapshot",
        "save_snapshot",
        "view_at",
        "fetch_wal",
        "create_tenant",
        "delete_tenant",
        "fence_tenant",
        "promote",
        "reparent",
        "reseed",
        "flush",
        "submit",
        "submit_many",
        "checkpoint",
    }
)

#: Exception constructors a route handler must not raise bare.
DISALLOWED_RAISES = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "KeyError",
        "RuntimeError",
        "NotImplementedError",
        "OSError",
        "IOError",
    }
)

#: Classes whose raises face the embedding process, not HTTP clients.
ENVELOPE_EXEMPT_CLASSES = frozenset({"BackgroundServer"})


def _blocking_call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open"
    if isinstance(func, ast.Attribute):
        if (
            func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            return "time.sleep"
        if func.attr in BLOCKING_ATTRS:
            return func.attr
    return None


class AsyncBlockingChecker(Checker):
    name = "async-blocking"
    codes = (ASYNC_CODE,)
    description = (
        "async handlers must not call blocking names directly; hop "
        "through run_in_executor"
    )
    scope = ("/repro/service/server.py",)

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for outer in ast.walk(source.tree):
            if not isinstance(outer, ast.AsyncFunctionDef):
                continue
            for node in ast.walk(outer):
                if not isinstance(node, ast.Call):
                    continue
                name = _blocking_call_name(node)
                if name is None:
                    continue
                findings.append(
                    self.finding(
                        source,
                        node,
                        ASYNC_CODE,
                        f"blocking call {name}(...) on the event loop in "
                        f"async {outer.name}(); dispatch it through "
                        "run_in_executor",
                    )
                )
        return findings


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


class ErrorEnvelopeChecker(Checker):
    name = "error-envelope"
    codes = (ENVELOPE_CODE,)
    description = (
        "route handlers raise the structured ServiceError family, never "
        "bare builtin exceptions"
    )
    scope = ("/repro/service/server.py",)

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node)
            if name is None or name not in DISALLOWED_RAISES:
                continue
            exempt = False
            for ancestor in source.ancestors(node):
                if isinstance(ancestor, ast.AsyncFunctionDef):
                    exempt = True  # lifecycle surface, not a route handler
                    break
                if (
                    isinstance(ancestor, ast.ClassDef)
                    and ancestor.name in ENVELOPE_EXEMPT_CLASSES
                ):
                    exempt = True
                    break
            if exempt:
                continue
            findings.append(
                self.finding(
                    source,
                    node,
                    ENVELOPE_CODE,
                    f"bare {name} raised in a route handler; raise "
                    "BadRequest/_ProtocolError (or the ServiceError "
                    "family) so the dispatcher can map it to the "
                    "structured error envelope",
                )
            )
        return findings
