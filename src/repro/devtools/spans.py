"""REPRO701 — span hygiene for the tracing layer.

``Tracer.span`` is a context manager: the span's duration is measured and
the record pushed into the ring in ``__exit__``, so a span opened any
other way (``span(...).__enter__()``, stashing the generator, calling it
for side effects) is silently never recorded — or worse, leaks an
unfinished span past an exception.  Every ``span(...)`` call in
``repro.service`` must therefore appear as the context expression of a
``with`` statement:

    with get_tracer().span("router.route", ...) as context:
        ...

Anything else — assigning the call, passing it to a function, entering it
through ``ExitStack`` — is a finding.  Code that genuinely needs dynamic
span lifetimes should restructure into contiguous ``with`` blocks (the
way ``StandbyReplica.apply_chunk`` groups same-trace runs) rather than
hand-managing ``__enter__``/``__exit__`` pairs.
"""

from __future__ import annotations

import ast
from typing import List

from repro.devtools.core import Checker, Finding, SourceFile

CODE = "REPRO701"


def _is_span_call(node: ast.AST) -> bool:
    """True for any call spelled ``span(...)`` / ``<expr>.span(...)``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "span"
    if isinstance(func, ast.Attribute):
        return func.attr == "span"
    return False


class SpanHygieneChecker(Checker):
    name = "span-hygiene"
    codes = (CODE,)
    description = (
        "tracer span() calls in repro.service must be the context "
        "expression of a with statement so __exit__ always records them"
    )
    scope = ("/repro/service/",)

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not _is_span_call(node):
                continue
            parent = source.parents.get(node)
            if isinstance(parent, ast.withitem) and parent.context_expr is node:
                continue
            findings.append(
                self.finding(
                    source,
                    node,
                    CODE,
                    "span() opened outside a with statement; use "
                    "'with tracer.span(...) as context:' so the span is "
                    "closed (and recorded) on every exit path",
                )
            )
        return findings
