"""End-to-end integration tests across all modules.

These tests drive the public API the way the examples and benchmarks do:
generate a dataset, build an update workload, run the dynamic algorithms and
the baselines side by side, and check the cross-algorithm relationships the
paper's evaluation relies on.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    DynELM,
    DynStrClu,
    ExactDynamicSCAN,
    IndexedDynamicSCAN,
    StrCluParams,
    static_scan,
)
from repro.core.labelling import is_valid_rho_approximate
from repro.core.result import clusterings_equal
from repro.evaluation.ari import adjusted_rand_index
from repro.evaluation.quality import mislabelled_rate
from repro.instrumentation import OpCounter
from repro.workloads.datasets import load_dataset, dataset_spec
from repro.workloads.updates import InsertionStrategy, generate_update_sequence


@pytest.fixture(scope="module")
def scenario():
    """One shared workload on the smallest registry dataset."""
    name = "email"
    spec = dataset_spec(name)
    edges = load_dataset(name)
    workload = generate_update_sequence(
        spec.num_vertices, edges, int(0.5 * len(edges)),
        InsertionStrategy.DEGREE_RANDOM, eta=0.25, seed=17,
    )
    return spec, workload


class TestAllAlgorithmsOnOneWorkload:
    def test_exact_algorithms_agree_and_approximation_is_close(self, scenario):
        spec, workload = scenario
        epsilon, mu = spec.default_epsilon_jaccard, 3
        params_exact = StrCluParams(epsilon=epsilon, mu=mu, rho=0.0)
        params_approx = StrCluParams(
            epsilon=epsilon, mu=mu, rho=0.1, delta_star=0.01, seed=3, max_samples=2048
        )

        dyn_exact = DynStrClu(params_exact)
        dyn_approx = DynELM(params_approx)
        pscan = ExactDynamicSCAN(epsilon, mu)
        hscan = IndexedDynamicSCAN()
        for update in workload.all_updates():
            dyn_exact.apply(update)
            dyn_approx.apply(update)
            pscan.apply(update)
            hscan.apply(update)

        # the three exact methods agree exactly
        reference = static_scan(pscan.graph, epsilon, mu)
        assert clusterings_equal(dyn_exact.clustering(), reference)
        assert clusterings_equal(pscan.clustering(), reference)
        assert clusterings_equal(hscan.clustering(epsilon, mu), reference)

        # the approximate labelling is close to exact: valid at a widened band
        # (the harness caps the per-invocation sample size, so the strict
        # Theorem 6.1 band needs the uncapped L_i — see DESIGN.md)
        assert is_valid_rho_approximate(
            dyn_approx.graph, dyn_approx.labels, epsilon, min(0.9, 5 * params_approx.rho)
        )
        rate = mislabelled_rate(pscan.labels, dyn_approx.labels)
        assert rate < 0.15
        ari = adjusted_rand_index(
            dyn_approx.clustering().partition_assignment(dyn_approx.graph, dyn_approx.labels),
            reference.partition_assignment(pscan.graph, pscan.labels),
        )
        assert ari > 0.5

    def test_dynamic_methods_do_less_similarity_work(self):
        """The paper's headline: DynELM needs far fewer similarity
        evaluations per update than the exact re-scanning baselines.

        The affordability buffer is ``floor(½ρε·d_max)``, so the effect needs
        degrees comfortably above ``2/(ρε)``; a denser planted graph is used
        here than the tiny shared ``email`` stand-in.
        """
        from repro.graph.generators import planted_partition_graph

        edges = planted_partition_graph(3, 40, 0.5, 0.01, seed=21)
        workload = generate_update_sequence(
            120, edges, int(0.5 * len(edges)), InsertionStrategy.DEGREE_RANDOM, eta=0.2, seed=22
        )
        epsilon, mu = 0.5, 4
        dyn_counter, pscan_counter = OpCounter(), OpCounter()
        dyn = DynELM(
            StrCluParams(epsilon=epsilon, mu=mu, rho=0.8, delta_star=0.01, seed=1, max_samples=64),
            counter=dyn_counter,
        )
        pscan = ExactDynamicSCAN(epsilon, mu, counter=pscan_counter)
        for update in workload.all_updates():
            dyn.apply(update)
            pscan.apply(update)
        assert dyn_counter.get("similarity_eval") < pscan_counter.get("similarity_eval") / 2

    def test_group_by_queries_after_churn(self, scenario):
        spec, workload = scenario
        params = StrCluParams(epsilon=spec.default_epsilon_jaccard, mu=3, rho=0.0)
        algo = DynStrClu(params)
        for update in workload.all_updates():
            algo.apply(update)
        rng = random.Random(5)
        vertices = list(algo.graph.vertices())
        clustering = algo.clustering()
        for size in (4, 16, 64):
            query = rng.sample(vertices, min(size, len(vertices)))
            groups = algo.group_by(query)
            expected = [c & set(query) for c in clustering.clusters if c & set(query)]
            assert sorted(map(len, groups.as_sets())) == sorted(map(len, expected))


class TestColdAndHotStart:
    def test_hot_start_equals_incremental_build(self, scenario):
        spec, workload = scenario
        params = StrCluParams(epsilon=spec.default_epsilon_jaccard, mu=3, rho=0.0)
        hot = DynStrClu.from_edges(workload.initial_edges, params)
        cold = DynStrClu(params)
        for u, v in workload.initial_edges:
            cold.insert_edge(u, v)
        assert clusterings_equal(hot.clustering(), cold.clustering())
