"""Integration tests for the paper's worked semantics.

Figure 1 of the paper illustrates the StrClu roles (cores, hubs, noise) and
the effect of deleting one edge on the sim-core graph.  The exact edge set of
the figure is not fully specified in the text, so these tests build analogous
small graphs with the same structural features and check the same behaviour:

* clusters may overlap only through non-core (hub) vertices;
* deleting a single edge can flip core statuses and re-shape ``G_core``;
* re-inserting the deleted edge restores the original clustering exactly.
"""

from __future__ import annotations

import pytest

from repro.baselines.scan import static_scan
from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.core.result import clusterings_equal


def bridge_graph_edges():
    """Two 5-cliques joined by a single bridge edge (u, w) = (4, 5)."""
    clique_a = [(u, v) for u in range(5) for v in range(u + 1, 5)]
    clique_b = [(u, v) for u in range(5, 10) for v in range(u + 1, 10)]
    return clique_a + clique_b + [(4, 5)]


class TestRolesAndOverlap:
    def test_hub_bridges_two_clusters(self):
        params = StrCluParams(epsilon=0.3, mu=3, rho=0.0)
        clique_a = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        clique_b = [(u, v) for u in range(10, 14) for v in range(u + 1, 14)]
        edges = clique_a + clique_b + [(2, 20), (12, 20)]
        algo = DynStrClu.from_edges(edges, params)
        clustering = algo.clustering()
        assert clustering.num_clusters == 2
        assert clustering.hubs == {20}
        assert not clustering.noise

    def test_pendant_vertices_are_noise(self):
        params = StrCluParams(epsilon=0.4, mu=3, rho=0.0)
        clique = [(u, v) for u in range(5) for v in range(u + 1, 5)]
        pendants = [(0, 100), (1, 101)]
        algo = DynStrClu.from_edges(clique + pendants, params)
        clustering = algo.clustering()
        # a pendant vertex shares only itself and its neighbour: similarity
        # 2 / 6 < 0.4, so it is attached to no cluster
        assert {100, 101} <= clustering.noise


class TestDeletionAndReinsertion:
    def test_delete_then_reinsert_restores_clustering(self):
        """Figure 1(a) -> 1(d) -> 1(a): deleting the bridge changes the
        result; re-inserting it restores the original exactly."""
        params = StrCluParams(epsilon=1 / 3, mu=3, rho=0.0)
        algo = DynStrClu.from_edges(bridge_graph_edges(), params)
        before = algo.clustering()
        assert before.num_clusters >= 1

        algo.delete_edge(4, 5)
        after_delete = algo.clustering()
        assert clusterings_equal(
            after_delete, static_scan(algo.graph, 1 / 3, 3)
        )

        algo.insert_edge(4, 5)
        after_reinsert = algo.clustering()
        assert clusterings_equal(after_reinsert, before)

    def test_deleting_bridge_affects_incident_similarities_only(self):
        """The affected edges of update (u, w) are exactly those incident on
        u or w (Observation 1): labels of other edges cannot change."""
        params = StrCluParams(epsilon=0.3, mu=3, rho=0.0)
        algo = DynStrClu.from_edges(bridge_graph_edges(), params)
        labels_before = dict(algo.labels)
        result = algo.delete_edge(4, 5)
        for (a, b), _label in result.flips:
            assert 4 in (a, b) or 5 in (a, b)
        for edge, label in algo.labels.items():
            if 4 not in edge and 5 not in edge:
                assert labels_before[edge] is label

    def test_core_status_flip_cascades_to_gcore(self):
        """Removing enough similar edges around a vertex demotes it from core
        and removes it from the connectivity structure."""
        params = StrCluParams(epsilon=0.3, mu=3, rho=0.0)
        clique = [(u, v) for u in range(5) for v in range(u + 1, 5)]
        algo = DynStrClu.from_edges(clique, params)
        assert algo.is_core(0)
        assert algo.cc.has_vertex(0)
        # remove vertex 0's incident edges one by one until it loses core status
        for v in (1, 2):
            algo.delete_edge(0, v)
        # N[0] = {0,3,4}; similarity with 3 and 4 is 3/5 >= 0.3, SimCnt(0)=2 < mu
        assert not algo.is_core(0)
        assert not algo.cc.has_vertex(0)
        reference = static_scan(algo.graph, 0.3, 3)
        assert clusterings_equal(algo.clustering(), reference)


class TestParameterSemantics:
    def test_larger_epsilon_never_adds_similar_edges(self):
        from repro.core.labelling import EdgeLabel, exact_labelling
        from repro.graph.dynamic_graph import DynamicGraph

        graph = DynamicGraph(bridge_graph_edges())
        low = exact_labelling(graph, 0.3)
        high = exact_labelling(graph, 0.6)
        for edge, label in high.items():
            if label is EdgeLabel.SIMILAR:
                assert low[edge] is EdgeLabel.SIMILAR

    def test_larger_mu_never_adds_cores(self):
        from repro.graph.dynamic_graph import DynamicGraph

        graph = DynamicGraph(bridge_graph_edges())
        small_mu = static_scan(graph, 0.3, 2)
        large_mu = static_scan(graph, 0.3, 4)
        assert large_mu.cores <= small_mu.cores
