"""Unit tests for the instrumentation module (counters, memory model, stopwatch)."""

from __future__ import annotations

import time

import pytest

from repro.instrumentation import NULL_COUNTER, MemoryModel, NullCounter, OpCounter, Stopwatch


class TestOpCounter:
    def test_add_and_get(self):
        counter = OpCounter()
        counter.add("x")
        counter.add("x", 4)
        counter.add("y")
        assert counter.get("x") == 5
        assert counter.get("y") == 1
        assert counter.get("missing") == 0
        assert counter.total() == 6

    def test_reset_and_snapshot(self):
        counter = OpCounter()
        counter.add("a", 3)
        snapshot = counter.snapshot()
        counter.reset()
        assert snapshot == {"a": 3}
        assert counter.total() == 0

    def test_null_counter_ignores_everything(self):
        NULL_COUNTER.add("anything", 1000)
        assert NULL_COUNTER.total() == 0
        assert isinstance(NULL_COUNTER, NullCounter)


class TestMemoryModel:
    def test_words_combination(self):
        model = MemoryModel()
        expected = 3 * model.adjacency_entry + 2 * model.vertex_record
        assert model.words(adjacency_entry=3, vertex_record=2) == expected

    def test_unknown_element_kind_raises(self):
        with pytest.raises(AttributeError):
            MemoryModel().words(unknown_thing=1)

    def test_zero_elements(self):
        assert MemoryModel().words() == 0


class TestStopwatch:
    def test_measures_phases(self):
        watch = Stopwatch()
        with watch.measure("a"):
            time.sleep(0.01)
        with watch.measure("a"):
            pass
        with watch.measure("b"):
            pass
        assert watch.elapsed["a"] >= 0.01
        assert watch.total() >= watch.elapsed["a"]
        assert set(watch.elapsed) == {"a", "b"}
