"""Unit tests for the synthetic dataset registry."""

from __future__ import annotations

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.datasets import (
    ALL_DATASETS,
    DATASETS,
    EXTRA_DATASETS,
    QUALITY_DATASETS,
    REPRESENTATIVES,
    dataset_spec,
    list_datasets,
    load_dataset,
)


class TestRegistry:
    def test_fifteen_datasets(self):
        assert len(DATASETS) == 15

    def test_extra_datasets_are_disjoint_from_the_paper_registry(self):
        assert set(EXTRA_DATASETS).isdisjoint(DATASETS)
        assert ALL_DATASETS == {**DATASETS, **EXTRA_DATASETS}
        assert "dense" in EXTRA_DATASETS

    def test_representatives_subset(self):
        assert len(REPRESENTATIVES) == 5
        assert set(REPRESENTATIVES) <= set(DATASETS)
        for name in REPRESENTATIVES:
            assert DATASETS[name].representative

    def test_quality_datasets_include_twitter(self):
        assert "twitter" in QUALITY_DATASETS
        assert DATASETS["twitter"].scalability

    def test_list_datasets(self):
        assert sorted(list_datasets()) == sorted(ALL_DATASETS)
        assert sorted(list_datasets(include_extras=False)) == sorted(DATASETS)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("does-not-exist")
        with pytest.raises(KeyError):
            dataset_spec("does-not-exist")

    def test_epsilon_defaults_in_range(self):
        for spec in DATASETS.values():
            assert 0 < spec.default_epsilon_jaccard <= 1
            assert 0 < spec.default_epsilon_cosine <= 1
            # the paper observes that matching cosine thresholds are larger
            assert spec.default_epsilon_cosine >= spec.default_epsilon_jaccard


class TestGeneratedGraphs:
    @pytest.mark.parametrize("name", sorted(ALL_DATASETS))
    def test_every_dataset_loads_as_a_simple_graph(self, name):
        edges = load_dataset(name)
        assert edges, name
        graph = DynamicGraph(edges)  # raises on duplicates / self loops
        spec = dataset_spec(name)
        assert graph.num_vertices <= spec.num_vertices
        assert graph.num_vertices >= spec.num_vertices * 0.8

    def test_deterministic(self):
        assert load_dataset("slashdot") == load_dataset("slashdot")

    def test_twitter_is_largest(self):
        sizes = {name: len(load_dataset(name)) for name in ("twitter", "email", "slashdot")}
        assert sizes["twitter"] > sizes["slashdot"] > sizes["email"]
