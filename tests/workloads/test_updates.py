"""Unit tests for the update-sequence simulator (Section 9.4)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.dynelm import UpdateKind
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.graph.generators import planted_partition_graph
from repro.workloads.updates import InsertionStrategy, generate_update_sequence


@pytest.fixture
def base_edges():
    return planted_partition_graph(3, 10, 0.4, 0.05, seed=1)


def replay(workload):
    """Apply the workload to a plain graph; raises if any update is inconsistent."""
    graph = DynamicGraph()
    for update in workload.all_updates():
        if update.kind is UpdateKind.INSERT:
            graph.insert_edge(update.u, update.v)
        else:
            graph.delete_edge(update.u, update.v)
    return graph


class TestGeneration:
    def test_counts(self, base_edges):
        workload = generate_update_sequence(30, base_edges, 120, "RR", eta=0.0, seed=0)
        assert len(workload.updates) == 120
        assert workload.total_updates == len(base_edges) + 120

    def test_insert_only_when_eta_zero(self, base_edges):
        workload = generate_update_sequence(30, base_edges, 150, "RR", eta=0.0, seed=0)
        assert all(u.kind is UpdateKind.INSERT for u in workload.updates)

    def test_deletion_fraction_tracks_eta(self, base_edges):
        eta = 0.5
        # use a roomy vertex universe so the graph never saturates (saturation
        # converts insertions into fallback deletions and skews the ratio)
        workload = generate_update_sequence(120, base_edges, 2000, "RR", eta=eta, seed=4)
        kinds = Counter(u.kind for u in workload.updates)
        fraction = kinds[UpdateKind.DELETE] / len(workload.updates)
        assert abs(fraction - eta / (1 + eta)) < 0.05

    def test_replay_is_always_consistent(self, base_edges):
        for strategy in InsertionStrategy:
            for eta in (0.0, 0.2, 0.5):
                workload = generate_update_sequence(
                    30, base_edges, 400, strategy, eta=eta, seed=7
                )
                graph = replay(workload)
                assert graph.num_edges >= 0

    def test_deterministic_for_seed(self, base_edges):
        a = generate_update_sequence(30, base_edges, 100, "DR", eta=0.3, seed=5)
        b = generate_update_sequence(30, base_edges, 100, "DR", eta=0.3, seed=5)
        assert a.updates == b.updates
        c = generate_update_sequence(30, base_edges, 100, "DR", eta=0.3, seed=6)
        assert a.updates != c.updates

    def test_negative_eta_rejected(self, base_edges):
        with pytest.raises(ValueError):
            generate_update_sequence(30, base_edges, 10, "RR", eta=-1, seed=0)

    def test_unknown_strategy_rejected(self, base_edges):
        with pytest.raises(ValueError):
            generate_update_sequence(30, base_edges, 10, "XX", eta=0.0, seed=0)

    def test_never_inserts_existing_edge_or_self_loop(self, base_edges):
        workload = generate_update_sequence(30, base_edges, 500, "DD", eta=0.3, seed=9)
        present = {canonical_edge(u, v) for u, v in base_edges}
        for update in workload.updates:
            assert update.u != update.v
            if update.kind is UpdateKind.INSERT:
                assert update.edge not in present
                present.add(update.edge)
            else:
                assert update.edge in present
                present.discard(update.edge)

    def test_complete_graph_falls_back_to_deletions(self):
        """On a tiny complete graph, insert requests degrade to deletions."""
        n = 4
        complete = [(u, v) for u in range(n) for v in range(u + 1, n)]
        workload = generate_update_sequence(n, complete, 20, "RR", eta=0.0, seed=1)
        assert any(u.kind is UpdateKind.DELETE for u in workload.updates)
        replay(workload)


class TestDegreeBias:
    def test_degree_strategies_prefer_high_degree_vertices(self):
        """DR insertions must touch the hub of a star far more often than RR,
        because the first endpoint is drawn proportionally to degree."""
        star = [(0, i) for i in range(1, 40)]

        def hub_touch_fraction(strategy: str) -> float:
            # large vertex universe so the hub has plenty of non-neighbours left
            workload = generate_update_sequence(400, star, 300, strategy, eta=0.0, seed=3)
            touches = sum(1 for u in workload.updates if 0 in (u.u, u.v))
            return touches / len(workload.updates)

        assert hub_touch_fraction("DR") > hub_touch_fraction("RR") + 0.1
