"""Floors-file validation and report gating."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.gate import (
    FloorsError,
    evaluate_report,
    gate_reports,
    load_floors,
    resolve_metric,
    validate_floors,
)

FLOORS_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "floors.json"


def _floors(*checks, benchmark="demo"):
    return {
        "schema_version": 1,
        "gates": [{"benchmark": benchmark, "checks": list(checks)}],
    }


class TestValidateFloors:
    def test_committed_floors_are_valid(self):
        floors = load_floors(FLOORS_PATH)
        assert validate_floors(floors, str(FLOORS_PATH)) == []

    def test_unknown_top_level_key(self):
        doc = _floors({"metric": "x", "min": 1})
        doc["gatez"] = []
        problems = validate_floors(doc, "inline")
        assert any("gatez" in p for p in problems)

    def test_missing_bound_flagged(self):
        problems = validate_floors(_floors({"metric": "x"}), "inline")
        assert any("min" in p for p in problems)

    def test_equals_not_combinable_with_min(self):
        problems = validate_floors(
            _floors({"metric": "x", "equals": 1, "min": 0}), "inline"
        )
        assert problems

    def test_negative_tolerance_flagged(self):
        problems = validate_floors(
            _floors({"metric": "x", "min": 1, "tolerance": -0.1}), "inline"
        )
        assert problems

    def test_newer_schema_version_flagged(self):
        doc = _floors({"metric": "x", "min": 1})
        doc["schema_version"] = 99
        assert validate_floors(doc, "inline")

    def test_duplicate_benchmark_gates_flagged(self):
        doc = _floors({"metric": "x", "min": 1})
        doc["gates"].append(doc["gates"][0])
        assert any("duplicate" in p for p in validate_floors(doc, "inline"))

    def test_load_floors_raises_on_problems(self, tmp_path):
        path = tmp_path / "floors.json"
        path.write_text(json.dumps({"schema_version": 1, "gates": [{}]}))
        with pytest.raises(FloorsError):
            load_floors(path)


class TestResolveMetric:
    DOC = {"a": {"b": 2.5}, "items": [{"v": 1}, {"v": 2}], "flag": True}

    def test_dot_path(self):
        assert resolve_metric(self.DOC, "a.b") == [("a.b", 2.5)]

    def test_wildcard_fans_out(self):
        assert resolve_metric(self.DOC, "items.*.v") == [
            ("items.0.v", 1),
            ("items.1.v", 2),
        ]

    def test_numeric_index(self):
        assert resolve_metric(self.DOC, "items.1.v") == [("items.1.v", 2)]

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            resolve_metric(self.DOC, "a.nope")


class TestEvaluateReport:
    def test_floor_pass_and_fail(self):
        floors = _floors({"metric": "x", "min": 2.0})
        ok = evaluate_report({"benchmark": "demo", "x": 2.0}, floors, "r")
        assert [r.ok for r in ok] == [True]
        bad = evaluate_report({"benchmark": "demo", "x": 1.99}, floors, "r")
        assert [r.ok for r in bad] == [False]

    def test_tolerance_band_widens_floor(self):
        floors = _floors({"metric": "x", "min": 2.0, "tolerance": 0.1})
        ok = evaluate_report({"benchmark": "demo", "x": 1.85}, floors, "r")
        assert ok[0].ok
        bad = evaluate_report({"benchmark": "demo", "x": 1.79}, floors, "r")
        assert not bad[0].ok

    def test_exclusive_floor(self):
        floors = _floors({"metric": "x", "min": 0, "exclusive": True})
        assert not evaluate_report({"benchmark": "demo", "x": 0}, floors, "r")[0].ok
        assert evaluate_report({"benchmark": "demo", "x": 0.1}, floors, "r")[0].ok

    def test_ceiling(self):
        floors = _floors({"metric": "x", "max": 5})
        assert evaluate_report({"benchmark": "demo", "x": 5}, floors, "r")[0].ok
        assert not evaluate_report({"benchmark": "demo", "x": 6}, floors, "r")[0].ok

    def test_equals_bool_is_type_strict(self):
        floors = _floors({"metric": "flag", "equals": True})
        assert evaluate_report({"benchmark": "demo", "flag": True}, floors, "r")[0].ok
        # a truthy non-bool (e.g. 1) must NOT satisfy equals: true
        assert not evaluate_report({"benchmark": "demo", "flag": 1}, floors, "r")[0].ok
        assert not evaluate_report({"benchmark": "demo", "flag": False}, floors, "r")[
            0
        ].ok

    def test_missing_metric_is_a_failure(self):
        floors = _floors({"metric": "a.b.c", "min": 1})
        results = evaluate_report({"benchmark": "demo"}, floors, "r")
        assert [r.ok for r in results] == [False]
        assert "a.b.c" in results[0].metric

    def test_non_numeric_value_is_a_failure(self):
        floors = _floors({"metric": "x", "min": 1})
        assert not evaluate_report({"benchmark": "demo", "x": "fast"}, floors, "r")[
            0
        ].ok

    def test_report_without_benchmark_field_fails(self):
        floors = _floors({"metric": "x", "min": 1})
        results = evaluate_report({"x": 5}, floors, "r")
        assert results and not results[0].ok

    def test_wildcard_checks_every_element(self):
        floors = _floors({"metric": "specs.*.v", "min": 1})
        report = {"benchmark": "demo", "specs": [{"v": 2}, {"v": 0}]}
        results = evaluate_report(report, floors, "r")
        assert [r.ok for r in results] == [True, False]


class TestMigratedCiDecisions:
    """The gate must reproduce every decision the old inline asserts made."""

    def test_service_throughput(self):
        floors = load_floors(FLOORS_PATH)
        good = {
            "benchmark": "service_throughput",
            "ingest": {"updates_per_second": 1234.5},
            "query": {"requests": 200},
        }
        assert all(r.ok for r in evaluate_report(good, floors, "r"))
        dead = {
            "benchmark": "service_throughput",
            "ingest": {"updates_per_second": 0},
            "query": {"requests": 200},
        }
        assert any(not r.ok for r in evaluate_report(dead, floors, "r"))

    def test_view_capture(self):
        floors = load_floors(FLOORS_PATH)
        base = {
            "benchmark": "view_capture",
            "config": {"verified_equivalence": True},
            "incremental": {"fallbacks": 0},
            "speedup": 3.2,
        }
        assert all(r.ok for r in evaluate_report(base, floors, "r"))

        diverged = dict(base, config={"verified_equivalence": False})
        assert any(not r.ok for r in evaluate_report(diverged, floors, "r"))

        fell_back = dict(base, incremental={"fallbacks": 2})
        assert any(not r.ok for r in evaluate_report(fell_back, floors, "r"))

        slow = dict(base, speedup=1.9)
        assert any(not r.ok for r in evaluate_report(slow, floors, "r"))

    def test_sharded_throughput(self):
        floors = load_floors(FLOORS_PATH)
        base = {
            "benchmark": "sharded_throughput",
            "config": {"verified_equivalence": True},
            "speedup_4x": 2.1,
        }
        assert all(r.ok for r in evaluate_report(base, floors, "r"))
        assert any(
            not r.ok for r in evaluate_report(dict(base, speedup_4x=1.4), floors, "r")
        )
        bad_eq = dict(base, config={"verified_equivalence": False})
        assert any(not r.ok for r in evaluate_report(bad_eq, floors, "r"))


class TestGateReports:
    def test_end_to_end_files(self, tmp_path):
        floors_path = tmp_path / "floors.json"
        floors_path.write_text(
            json.dumps(_floors({"metric": "x", "min": 2.0}, benchmark="demo"))
        )
        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps({"benchmark": "demo", "x": 3}))
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"benchmark": "demo", "x": 1}))

        outcome = gate_reports([good], floors_path)
        assert outcome.ok
        outcome = gate_reports([good, bad], floors_path)
        assert not outcome.ok
        assert len(outcome.results) == 2

    def test_unmatched_report_is_surfaced(self, tmp_path):
        floors_path = tmp_path / "floors.json"
        floors_path.write_text(
            json.dumps(_floors({"metric": "x", "min": 1}, benchmark="other"))
        )
        report = tmp_path / "BENCH_x.json"
        report.write_text(json.dumps({"benchmark": "demo", "x": 1}))
        outcome = gate_reports([report], floors_path)
        assert outcome.ok  # no gate matched: not a failure, but surfaced
        assert len(outcome.unmatched) == 1
        assert "demo" in outcome.unmatched[0]

    def test_unreadable_report_is_an_error(self, tmp_path):
        floors_path = tmp_path / "floors.json"
        floors_path.write_text(
            json.dumps(_floors({"metric": "x", "min": 1}, benchmark="demo"))
        )
        outcome = gate_reports([tmp_path / "absent.json"], floors_path)
        assert not outcome.ok
        assert outcome.errors
