"""Spec-matrix parsing, validation and expansion."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.bench.spec import (
    BenchSpec,
    ReplicaTopology,
    SpecError,
    expand_matrix,
    load_matrix,
    select_specs,
)


class TestBenchSpecValidation:
    def test_defaults_are_valid(self):
        spec = BenchSpec(name="s")
        assert spec.backend == "dynstrclu"
        assert spec.shards == 1
        assert spec.rate == 0.0
        assert spec.replicas == ReplicaTopology()

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="backend"):
            BenchSpec(name="s", backend="nope")

    def test_query_ratio_must_be_below_one(self):
        with pytest.raises(SpecError, match="query_ratio"):
            BenchSpec(name="s", query_ratio=1.0)
        with pytest.raises(SpecError, match="query_ratio"):
            BenchSpec(name="s", query_ratio=-0.1)

    def test_updates_floor(self):
        with pytest.raises(SpecError, match="updates"):
            BenchSpec(name="s", updates=0)

    def test_negative_rate_rejected(self):
        with pytest.raises(SpecError, match="rate"):
            BenchSpec(name="s", rate=-1.0)

    def test_replication_forces_durability(self):
        spec = BenchSpec(
            name="s", replicas=ReplicaTopology(chain_depth=1), durable=False
        )
        assert spec.durable is True

    def test_no_replication_keeps_durability_choice(self):
        assert BenchSpec(name="s").durable is False

    def test_tenant_names(self):
        assert BenchSpec(name="s", tenants=3).tenant_names == ["t0", "t1", "t2"]

    def test_as_dict_round_trips_replicas(self):
        doc = BenchSpec(name="s", replicas=ReplicaTopology(2, 2, False)).as_dict()
        assert doc["replicas"] == {
            "chain_depth": 2,
            "fanout": 2,
            "read_from_standbys": False,
        }


class TestReplicaTopology:
    def test_standby_count(self):
        assert ReplicaTopology(chain_depth=2, fanout=3).standby_count == 6
        assert ReplicaTopology().standby_count == 0

    def test_unknown_key_rejected_loudly(self):
        with pytest.raises(SpecError) as excinfo:
            ReplicaTopology.from_document({"chain_dpeth": 1})
        assert "chain_dpeth" in str(excinfo.value)
        assert "chain_depth" in str(excinfo.value)  # accepted keys are listed

    def test_bounds(self):
        with pytest.raises(SpecError):
            ReplicaTopology(chain_depth=-1)
        with pytest.raises(SpecError):
            ReplicaTopology(fanout=0)


class TestExpandMatrix:
    def test_cross_product_count(self):
        doc = {
            "matrix": {"shards": [1, 2, 4], "tenants": [1, 4]},
            "defaults": {"updates": 10},
        }
        specs = expand_matrix(doc, "inline")
        assert len(specs) == 6
        assert sorted({s.shards for s in specs}) == [1, 2, 4]
        assert all(s.updates == 10 for s in specs)

    def test_explicit_specs_appended(self):
        doc = {
            "matrix": {"shards": [1, 2]},
            "specs": [{"name": "chain", "replicas": {"chain_depth": 1}}],
        }
        specs = expand_matrix(doc, "inline")
        assert len(specs) == 3
        assert specs[-1].name == "chain"
        assert specs[-1].replicas.chain_depth == 1

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SpecError, match="matrrix"):
            expand_matrix({"matrrix": {"shards": [1]}}, "inline")

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(SpecError, match="shardz"):
            expand_matrix({"specs": [{"name": "x", "shardz": 2}]}, "inline")

    def test_unknown_default_rejected(self):
        with pytest.raises(SpecError, match="updatez"):
            expand_matrix({"defaults": {"updatez": 5}, "matrix": {"shards": [1]}}, "i")

    def test_name_not_a_matrix_axis(self):
        with pytest.raises(SpecError, match="name"):
            expand_matrix({"matrix": {"name": ["a", "b"]}}, "inline")

    def test_empty_document_rejected(self):
        with pytest.raises(SpecError, match="no specs"):
            expand_matrix({}, "inline")

    def test_duplicate_names_get_suffixes(self):
        doc = {"specs": [{"name": "x"}, {"name": "x"}]}
        names = [s.name for s in expand_matrix(doc, "inline")]
        assert len(set(names)) == 2

    def test_auto_names_are_deterministic(self):
        doc = {"matrix": {"rate": [0, 100.0], "shards": [1]}}
        names = [s.name for s in expand_matrix(doc, "inline")]
        assert names == ["ratemax-shards1", "rate100-shards1"]


class TestLoadMatrix:
    def test_json_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"specs": [{"name": "a"}]}))
        specs = load_matrix(path)
        assert [s.name for s in specs] == ["a"]

    def test_malformed_json_is_spec_error(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{nope")
        with pytest.raises(SpecError):
            load_matrix(path)

    def test_missing_file_is_spec_error(self, tmp_path):
        with pytest.raises(SpecError):
            load_matrix(tmp_path / "absent.json")

    @pytest.mark.skipif(sys.version_info < (3, 11), reason="tomllib is 3.11+")
    def test_toml_file(self, tmp_path):
        path = tmp_path / "m.toml"
        path.write_text('[[specs]]\nname = "a"\nshards = 4\n')
        specs = load_matrix(path)
        assert specs[0].shards == 4

    def test_committed_matrices_expand(self):
        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        ci = load_matrix(bench_dir / "capacity_matrix_ci.json")
        assert {s.name for s in ci} == {"shard1", "shard4", "chain1"}
        full = load_matrix(bench_dir / "capacity_matrix.json")
        assert len(full) == 9
        assert all(s.saturation_search for s in full)


class TestSelectSpecs:
    def test_only_filter(self):
        specs = expand_matrix({"specs": [{"name": "a"}, {"name": "b"}]}, "i")
        assert [s.name for s in select_specs(specs, ["b"])] == ["b"]

    def test_unknown_name_rejected(self):
        specs = expand_matrix({"specs": [{"name": "a"}]}, "i")
        with pytest.raises(SpecError, match="nope"):
            select_specs(specs, ["nope"])

    def test_no_filter_is_identity(self):
        specs = expand_matrix({"specs": [{"name": "a"}]}, "i")
        assert select_specs(specs, None) == specs
