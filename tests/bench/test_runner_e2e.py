"""Saturation-search unit tests and a tiny end-to-end matrix run.

The e2e case boots real in-process servers (BackgroundServer over a real
socket), drives them with the open-loop load generator, and checks the
consolidated report both structurally and against the committed floors —
the same path CI's capacity-bench job takes, scaled down.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.gate import evaluate_report, load_floors
from repro.bench.report import host_fingerprint, percentile_from_buckets
from repro.bench.runner import (
    ProbeResult,
    RunnerOptions,
    run_matrix,
    search_max_sustainable,
)
from repro.bench.spec import expand_matrix

REPO_ROOT = Path(__file__).resolve().parents[2]


def _probe_with_capacity(capacity: float):
    """A fake probe that sustains any rate up to ``capacity``."""
    calls = []

    def probe(rate: float) -> ProbeResult:
        calls.append(rate)
        ok = rate <= capacity
        return ProbeResult(
            rate=rate,
            offered=rate,
            achieved=min(rate, capacity),
            p99_ms=5.0 if ok else 900.0,
            rejected=0 if ok else 50,
            max_lag_s=0.0 if ok else 3.0,
            ok=ok,
            detail="" if ok else "p99 above SLO",
        )

    return probe, calls


class TestSearchMaxSustainable:
    def test_ceiling_sustainable_short_circuits(self):
        probe, calls = _probe_with_capacity(1000.0)
        best, saturated, probes = search_max_sustainable(probe, hi=800.0, rounds=5)
        assert best == 800.0
        assert saturated is False
        assert calls == [800.0]
        assert len(probes) == 1

    def test_bisection_converges_to_capacity(self):
        probe, _ = _probe_with_capacity(500.0)
        best, saturated, probes = search_max_sustainable(probe, hi=1600.0, rounds=6)
        assert saturated is True
        # bisection over (0, 1600] with 5 refinement probes lands within
        # 1600 / 2**5 = 50 updates/s of the true capacity, from below
        assert 450.0 <= best <= 500.0
        assert len(probes) == 6

    def test_fully_saturated_returns_lo(self):
        probe, _ = _probe_with_capacity(0.0)
        best, saturated, _ = search_max_sustainable(probe, hi=100.0, rounds=3)
        assert saturated is True
        assert best == 0.0

    def test_probe_log_preserved_in_order(self):
        probe, calls = _probe_with_capacity(500.0)
        _, _, probes = search_max_sustainable(probe, hi=1000.0, rounds=4)
        assert [p.rate for p in probes] == calls


class TestPercentileFromBuckets:
    def test_interpolates_within_bucket(self):
        bounds = [1.0, 2.0, 4.0]
        cumulative = [0, 10, 10]  # all 10 observations in (1.0, 2.0]
        p50 = percentile_from_buckets(bounds, cumulative, 50)
        assert 1.0 < p50 <= 2.0

    def test_empty_histogram(self):
        assert percentile_from_buckets([1.0], [0], 99) == 0.0


class TestHostFingerprint:
    def test_required_fields(self):
        host = host_fingerprint()
        assert host["cpu_count"] >= 1
        assert host["python"].count(".") == 2
        assert host["repro_version"]


class TestTinyMatrixEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        specs = expand_matrix(
            {
                "defaults": {
                    "dataset": "email",
                    "updates": 60,
                    "ingest_batch": 8,
                    "query_ratio": 0.2,
                    "seed": 3,
                },
                "specs": [
                    {"name": "one-shard", "shards": 1},
                    {"name": "two-shards", "shards": 2},
                ],
            },
            "inline",
        )
        return run_matrix(
            specs, RunnerOptions(mode="inprocess", verbose=False), matrix_path="inline"
        )

    def test_report_shape(self, report):
        assert report["benchmark"] == "capacity_matrix"
        assert report["schema_version"] == 1
        assert report["host"]["cpu_count"] >= 1
        assert [e["name"] for e in report["specs"]] == ["one-shard", "two-shards"]

    def test_every_spec_completed(self, report):
        for entry in report["specs"]:
            assert "error" not in entry, entry.get("error")
            assert entry["ingest"]["updates_applied"] > 0
            assert entry["ingest"]["achieved_updates_per_second"] > 0
            assert entry["ingest"]["updates_rejected"] == 0

    def test_percentiles_present_and_ordered(self, report):
        for entry in report["specs"]:
            ingest = entry["ingest"]
            assert ingest["count"] > 0
            assert 0 < ingest["p50_ms"] <= ingest["p90_ms"] <= ingest["p99_ms"]
            query = entry["query"]
            assert query["count"] > 0
            assert 0 < query["p50_ms"] <= query["p99_ms"]

    def test_stage_table_scraped_from_metrics(self, report):
        for entry in report["specs"]:
            stages = entry["stages"]
            assert {"queue_wait", "backend_apply", "view_publish"} <= set(stages)
            for table in stages.values():
                assert table["count"] > 0
                assert table["p99_ms"] >= table["p50_ms"] >= 0

    def test_report_passes_committed_capacity_floors(self, report):
        floors = load_floors(REPO_ROOT / "benchmarks" / "floors.json")
        results = evaluate_report(report, floors, "BENCH_capacity.json")
        assert results, "capacity_matrix gate must match the report"
        failures = [r for r in results if not r.ok]
        assert not failures, [r.row() for r in failures]
