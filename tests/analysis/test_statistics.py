"""Unit tests for cluster-level statistics."""

from __future__ import annotations

import pytest

from repro.analysis.statistics import (
    boundary_edges_between,
    cluster_statistics,
    clustering_coverage,
    clustering_statistics,
    clusters_intersecting,
    labelling_similarity_histogram,
    modularity,
    size_distribution,
)
from repro.core.labelling import EdgeLabel
from repro.core.result import Clustering
from repro.graph.dynamic_graph import DynamicGraph


@pytest.fixture
def two_triangles() -> DynamicGraph:
    graph = DynamicGraph()
    for edge in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]:
        graph.insert_edge(*edge)
    return graph


class TestClusterStatistics:
    def test_internal_and_boundary_edges(self, two_triangles):
        stats = cluster_statistics({0, 1, 2}, two_triangles)
        assert stats.size == 3
        assert stats.internal_edges == 3
        assert stats.boundary_edges == 1
        assert stats.density == pytest.approx(1.0)
        assert stats.conductance == pytest.approx(1 / 7)
        assert stats.average_internal_degree == pytest.approx(2.0)

    def test_core_count(self, two_triangles):
        stats = cluster_statistics({0, 1, 2}, two_triangles, cores={1, 2, 5})
        assert stats.cores == 2

    def test_singleton_cluster(self, two_triangles):
        stats = cluster_statistics({0}, two_triangles)
        assert stats.density == 0.0
        assert stats.internal_edges == 0
        assert stats.boundary_edges == 2

    def test_vertices_missing_from_graph_are_ignored(self, two_triangles):
        stats = cluster_statistics({0, 1, 999}, two_triangles)
        assert stats.size == 3
        assert stats.internal_edges == 1

    def test_as_row_has_all_columns(self, two_triangles):
        row = cluster_statistics({0, 1, 2}, two_triangles).as_row()
        assert {"size", "density", "conductance", "internal_edges"} <= set(row)


class TestClusteringLevel:
    def test_clustering_statistics_order(self, two_triangles):
        clustering = Clustering(clusters=[{0, 1, 2}, {3, 4, 5}], cores={0, 3})
        stats = clustering_statistics(clustering, two_triangles)
        assert len(stats) == 2
        assert stats[0].internal_edges == stats[1].internal_edges == 3

    def test_coverage(self, two_triangles):
        clustering = Clustering(clusters=[{0, 1, 2}])
        assert clustering_coverage(clustering, two_triangles) == pytest.approx(0.5)
        assert clustering_coverage(Clustering(), two_triangles) == 0.0
        assert clustering_coverage(Clustering(clusters=[set()]), DynamicGraph()) == 0.0

    def test_size_distribution(self):
        clustering = Clustering(clusters=[{1, 2}, {3, 4}, {5, 6, 7}])
        assert size_distribution(clustering) == {2: 2, 3: 1}

    def test_clusters_intersecting(self):
        clustering = Clustering(clusters=[{1, 2}, {3, 4}, {5, 6}])
        assert clusters_intersecting(clustering, {2, 5}) == [0, 2]
        assert clusters_intersecting(clustering, {99}) == []

    def test_boundary_edges_between(self, two_triangles):
        clustering = Clustering(clusters=[{0, 1, 2}, {3, 4, 5}])
        between = boundary_edges_between(clustering, two_triangles)
        assert between == {(0, 1): 1}


class TestModularity:
    def test_two_communities(self, two_triangles):
        assignment = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
        assert modularity(assignment, two_triangles) == pytest.approx(5 / 14)

    def test_single_community_is_zero(self, two_triangles):
        assignment = {v: 0 for v in range(6)}
        assert modularity(assignment, two_triangles) == pytest.approx(0.0)

    def test_empty_graph(self):
        assert modularity({}, DynamicGraph()) == 0.0

    def test_better_partition_has_higher_modularity(self, two_triangles):
        good = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
        bad = {0: 0, 1: 1, 2: 0, 3: 1, 4: 0, 5: 1}
        assert modularity(good, two_triangles) > modularity(bad, two_triangles)


class TestLabelHistogram:
    def test_counts(self):
        labels = {
            (1, 2): EdgeLabel.SIMILAR,
            (2, 3): EdgeLabel.DISSIMILAR,
            (3, 4): EdgeLabel.SIMILAR,
        }
        assert labelling_similarity_histogram(labels) == {"similar": 2, "dissimilar": 1}
