"""Unit tests for cluster-evolution tracking."""

from __future__ import annotations

import pytest

from repro.analysis.tracking import (
    ClusterEventKind,
    ClusterTracker,
    match_clusterings,
)
from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.core.result import Clustering


def _clustering(*clusters):
    return Clustering(clusters=[set(c) for c in clusters])


class TestMatchClusterings:
    def test_continued(self):
        events = match_clusterings(_clustering({1, 2, 3}), _clustering({1, 2, 3}))
        assert [e.kind for e in events] == [ClusterEventKind.CONTINUED]
        assert events[0].overlap == pytest.approx(1.0)

    def test_born_and_dissolved(self):
        events = match_clusterings(_clustering({1, 2, 3}), _clustering({7, 8, 9}))
        kinds = sorted(e.kind.value for e in events)
        assert kinds == ["born", "dissolved"]

    def test_grown_and_shrunk(self):
        grown = match_clusterings(_clustering({1, 2, 3}), _clustering({1, 2, 3, 4, 5}))
        assert grown[0].kind is ClusterEventKind.GROWN
        shrunk = match_clusterings(_clustering({1, 2, 3, 4, 5}), _clustering({1, 2, 3}))
        assert shrunk[0].kind is ClusterEventKind.SHRUNK

    def test_split(self):
        events = match_clusterings(
            _clustering({1, 2, 3, 4}), _clustering({1, 2}, {3, 4})
        )
        assert all(e.kind is ClusterEventKind.SPLIT for e in events)
        assert all(e.old_indices == (0,) for e in events)

    def test_merge(self):
        events = match_clusterings(
            _clustering({1, 2, 3}, {4, 5, 6}), _clustering({1, 2, 3, 4, 5, 6})
        )
        assert len(events) == 1
        assert events[0].kind is ClusterEventKind.MERGED
        assert events[0].old_indices == (0, 1)

    def test_threshold_controls_matching(self):
        old = _clustering({1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
        new = _clustering({1, 20, 21, 22, 23, 24, 25, 26, 27, 28})
        strict = match_clusterings(old, new, threshold=0.5)
        assert any(e.kind is ClusterEventKind.BORN for e in strict)
        lax = match_clusterings(old, new, threshold=0.01)
        assert all(e.kind is not ClusterEventKind.BORN for e in lax)

    def test_involves(self):
        events = match_clusterings(_clustering({1, 2, 3}), _clustering({1, 2, 3}))
        assert events[0].involves(0)
        assert not events[0].involves(5)


class TestClusterTracker:
    def test_first_observation_has_no_events(self):
        tracker = ClusterTracker()
        assert tracker.observe(_clustering({1, 2, 3})) == []
        assert len(tracker.active_communities()) == 1

    def test_identifier_stability_across_growth(self):
        tracker = ClusterTracker()
        tracker.observe(_clustering({1, 2, 3}))
        first_id = tracker.community_id_of_cluster(0)
        tracker.observe(_clustering({1, 2, 3, 4}))
        assert tracker.community_id_of_cluster(0) == first_id

    def test_split_gets_fresh_identifiers(self):
        tracker = ClusterTracker()
        tracker.observe(_clustering({1, 2, 3, 4}))
        original = tracker.community_id_of_cluster(0)
        tracker.observe(_clustering({1, 2}, {3, 4}))
        new_ids = {tracker.community_id_of_cluster(0), tracker.community_id_of_cluster(1)}
        assert original not in new_ids
        assert len(new_ids) == 2

    def test_dissolved_history_recorded(self):
        tracker = ClusterTracker()
        tracker.observe(_clustering({1, 2, 3}))
        tracker.observe(_clustering())
        dissolved = tracker.events_of_kind(ClusterEventKind.DISSOLVED)
        assert len(dissolved) == 1
        assert len(tracker.active_communities()) == 0
        assert len(tracker.all_communities()) == 1

    def test_events_accumulate_with_steps(self):
        tracker = ClusterTracker()
        tracker.observe(_clustering({1, 2, 3}))
        tracker.observe(_clustering({1, 2, 3}, {7, 8, 9}))
        tracker.observe(_clustering({1, 2, 3}))
        born = tracker.events_of_kind(ClusterEventKind.BORN)
        dissolved = tracker.events_of_kind(ClusterEventKind.DISSOLVED)
        assert len(born) == 1 and born[0][0] == 1
        assert len(dissolved) == 1 and dissolved[0][0] == 2


class TestTrackerOnMaintainer:
    def test_merge_detected_when_bridge_appears(self):
        """Two separate triangles merge into one cluster when bridged densely."""
        params = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
        algo = DynStrClu(params)
        for u, v in [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)]:
            algo.insert_edge(u, v)
        tracker = ClusterTracker()
        tracker.observe(algo.clustering())
        assert len(tracker.active_communities()) == 2

        # densely connect the two triangles so they become one cluster
        for u, v in [(3, 4), (3, 5), (2, 4), (2, 5), (1, 4), (1, 6), (2, 6), (3, 6), (1, 5)]:
            algo.insert_edge(u, v)
        events = tracker.observe(algo.clustering())
        kinds = {e.kind for e in events}
        assert ClusterEventKind.MERGED in kinds
        assert len(tracker.active_communities()) == 1
