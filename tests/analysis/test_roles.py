"""Unit tests for vertex role classification."""

from __future__ import annotations

import pytest

from repro.analysis.roles import VertexRole, classify_roles, role_census, role_of
from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.core.result import Clustering


@pytest.fixture
def sample_clustering() -> Clustering:
    # two overlapping clusters; 3 is a hub, 9 is noise, 2 and 5 are members
    return Clustering(
        clusters=[{1, 2, 3}, {3, 4, 5}],
        cores={1, 4},
        hubs={3},
        noise={9},
    )


class TestClassifyRoles:
    def test_core_member_hub_outlier(self, sample_clustering):
        roles = classify_roles(sample_clustering, vertices=[1, 2, 3, 4, 5, 9])
        assert roles[1] is VertexRole.CORE
        assert roles[4] is VertexRole.CORE
        assert roles[2] is VertexRole.MEMBER
        assert roles[5] is VertexRole.MEMBER
        assert roles[3] is VertexRole.HUB
        assert roles[9] is VertexRole.OUTLIER

    def test_unknown_vertex_is_outlier(self, sample_clustering):
        roles = classify_roles(sample_clustering, vertices=[1, 777])
        assert roles[777] is VertexRole.OUTLIER

    def test_default_universe_comes_from_clustering(self, sample_clustering):
        roles = classify_roles(sample_clustering)
        assert set(roles) == {1, 2, 3, 4, 5, 9}

    def test_role_of_single_vertex(self, sample_clustering):
        assert role_of(3, sample_clustering) is VertexRole.HUB
        assert role_of(1, sample_clustering) is VertexRole.CORE

    def test_empty_clustering(self):
        roles = classify_roles(Clustering(), vertices=[1, 2])
        assert all(role is VertexRole.OUTLIER for role in roles.values())


class TestRoleCensus:
    def test_counts(self, sample_clustering):
        census = role_census(sample_clustering, vertices=[1, 2, 3, 4, 5, 9])
        assert census == {"core": 2, "member": 2, "hub": 1, "outlier": 1}

    def test_census_keys_always_present(self):
        census = role_census(Clustering(), vertices=[])
        assert set(census) == {"core", "member", "hub", "outlier"}
        assert all(v == 0 for v in census.values())


class TestAgainstDynStrClu:
    def test_roles_match_maintainer_view(self):
        params = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
        algo = DynStrClu(params)
        edges = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (5, 6), (4, 6), (7, 8)]
        for u, v in edges:
            algo.insert_edge(u, v)
        clustering = algo.clustering()
        roles = classify_roles(clustering, vertices=algo.graph.vertices())
        for core in clustering.cores:
            assert roles[core] is VertexRole.CORE
        for noise in clustering.noise:
            assert roles[noise] is VertexRole.OUTLIER
        for hub in clustering.hubs:
            assert roles[hub] is VertexRole.HUB
        # every graph vertex received a role
        assert set(roles) == set(algo.graph.vertices())
