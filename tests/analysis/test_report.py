"""Unit tests for the plain-text analysis report."""

from __future__ import annotations

from repro.analysis.report import analysis_report, analysis_rows
from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.core.result import Clustering
from repro.graph.dynamic_graph import DynamicGraph


def _two_triangles() -> DynStrClu:
    algo = DynStrClu(StrCluParams(epsilon=0.5, mu=2, rho=0.0))
    for u, v in [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6), (3, 7)]:
        algo.insert_edge(u, v)
    return algo


class TestAnalysisRows:
    def test_rows_ordered_by_size(self):
        algo = _two_triangles()
        rows = analysis_rows(algo.clustering(), algo.graph)
        assert [row["rank"] for row in rows] == list(range(1, len(rows) + 1))
        sizes = [row["size"] for row in rows]
        assert sizes == sorted(sizes, reverse=True)

    def test_top_k_limits_rows(self):
        algo = _two_triangles()
        rows = analysis_rows(algo.clustering(), algo.graph, top_k=1)
        assert len(rows) == 1

    def test_row_columns(self):
        algo = _two_triangles()
        row = analysis_rows(algo.clustering(), algo.graph)[0]
        assert {"rank", "size", "cores", "density", "conductance"} <= set(row)


class TestAnalysisReport:
    def test_report_mentions_headline_numbers(self):
        algo = _two_triangles()
        report = analysis_report(algo.clustering(), algo.graph, title="Report")
        assert report.splitlines()[0] == "Report"
        assert "clusters: 2" in report
        assert "roles:" in report
        assert "top-2 clusters:" in report

    def test_report_without_clusters(self):
        graph = DynamicGraph([(1, 2)])
        report = analysis_report(Clustering(), graph)
        assert "no clusters" in report
        assert "coverage: 0.0%" in report

    def test_report_with_explicit_universe(self):
        algo = _two_triangles()
        report = analysis_report(
            algo.clustering(), algo.graph, vertices=list(algo.graph.vertices()) + [99]
        )
        assert "outlier=" in report
