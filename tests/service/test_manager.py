"""Unit tests of the multi-tenant EngineManager."""

from __future__ import annotations

import pytest

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.service.engine import ClusteringEngine, EngineConfig
from repro.service.manager import (
    EngineManager,
    TenantConfig,
    TenantDeleteError,
    TenantExistsError,
    TenantLimitError,
    UnknownTenantError,
    validate_tenant_name,
)
from repro.service.sharding import ShardedEngine

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
FAST = EngineConfig(batch_size=8, flush_interval=0.01)

TRIANGLE = [Update.insert(1, 2), Update.insert(2, 3), Update.insert(1, 3)]


@pytest.fixture
def manager():
    with EngineManager(PARAMS, default_engine_config=FAST) as m:
        yield m


class TestTenantLifecycle:
    def test_default_tenant_created_eagerly(self, manager):
        assert "default" in manager
        assert manager.names() == ["default"]
        assert manager.get("default").running

    def test_create_get_delete(self, manager):
        engine = manager.create("acme")
        assert manager.get("acme") is engine
        assert engine.running
        manager.delete("acme")
        assert "acme" not in manager
        assert not engine.running  # owned engine was closed
        with pytest.raises(UnknownTenantError):
            manager.get("acme")
        with pytest.raises(UnknownTenantError):
            manager.delete("acme")

    def test_duplicate_tenant_rejected(self, manager):
        manager.create("acme")
        with pytest.raises(TenantExistsError):
            manager.create("acme")

    def test_tenant_limit_enforced(self):
        with EngineManager(PARAMS, max_tenants=2) as m:
            m.create("a")
            with pytest.raises(TenantLimitError):
                m.create("b")

    def test_invalid_tenant_names_rejected(self, manager):
        for bad in ("", "a/b", "a b", ".hidden", "x" * 65, 7):
            with pytest.raises(ValueError):
                manager.create(bad)

    def test_valid_tenant_names(self):
        for good in ("a", "acme-prod", "t.1", "A_b", "0"):
            assert validate_tenant_name(good) == good

    def test_per_tenant_backend_and_quota(self, manager):
        engine = manager.create("baseline", backend="pscan", queue_capacity=7)
        assert engine.backend == "pscan"
        assert engine.config.queue_capacity == 7
        assert manager.config_of("baseline").backend == "pscan"
        # other tenants keep the inherited config
        assert manager.get("default").config.queue_capacity == FAST.queue_capacity

    def test_close_all_idempotent(self):
        manager = EngineManager(PARAMS)
        engine = manager.get("default")
        manager.close()
        manager.close()
        assert not engine.running
        with pytest.raises(Exception):
            manager.create("late")


class TestIsolation:
    def test_updates_never_cross_tenants(self, manager):
        a = manager.create("a")
        b = manager.create("b")
        for update in TRIANGLE:
            a.submit(update)
        a.flush(timeout=10)
        assert {frozenset(g) for g in a.group_by([1, 2, 3]).as_sets()} == {
            frozenset({1, 2, 3})
        }
        assert b.group_by([1, 2, 3]).as_sets() == []
        assert b.applied == 0

    def test_per_tenant_backpressure(self, manager):
        # an unstarted engine cannot drain: only its own queue fills
        choked = ClusteringEngine(PARAMS, config=EngineConfig(queue_capacity=2))
        adopted = EngineManager.adopt(choked, name="choked")
        try:
            assert choked.submit_many(TRIANGLE, block=False) == 2
            # the sibling tenant (this test's default manager) is unaffected
            manager.get("default").submit_many(TRIANGLE, block=False)
            manager.get("default").flush(timeout=10)
            assert manager.get("default").applied == 3
        finally:
            adopted.close()
            choked.close(checkpoint=False)


class TestDurability:
    def test_tenants_persist_under_data_root(self, tmp_path):
        with EngineManager(PARAMS, default_engine_config=FAST, data_root=tmp_path) as m:
            engine = m.create("durable")
            for update in TRIANGLE:
                engine.submit(update)
            engine.flush(timeout=10)
            before = engine.view().clustering
            m.delete("durable")  # closes with a final checkpoint
        assert (tmp_path / "durable" / "snapshot.json").exists()

        with EngineManager(PARAMS, default_engine_config=FAST, data_root=tmp_path) as m:
            recovered = m.create("durable")
            from repro.core.result import clusterings_equal

            assert clusterings_equal(recovered.view().clustering, before)

    def test_non_snapshot_backend_is_memory_only_under_data_root(self, tmp_path):
        with EngineManager(PARAMS, data_root=tmp_path) as m:
            engine = m.create("baseline", backend="pscan")
            assert engine.data_dir is None
            assert not (tmp_path / "baseline").exists()


class TestAdoption:
    def test_adopted_engine_survives_manager(self):
        engine = ClusteringEngine(PARAMS, config=FAST).start()
        manager = EngineManager.adopt(engine)
        assert manager.get("default") is engine
        manager.delete("default")
        assert engine.running  # not owned: deregistered, not closed
        engine.close(checkpoint=False)


class TestShardedTenants:
    def test_create_builds_a_sharded_engine(self, manager):
        engine = manager.create("wide", shards=3)
        assert isinstance(engine, ShardedEngine)
        assert engine.num_shards == 3
        assert manager.config_of("wide").shards == 3
        for update in TRIANGLE:
            engine.submit(update)
        engine.flush(timeout=10)
        row = manager.describe("wide")
        assert row["shards"] == 3
        assert row["applied"] == 3
        manager.delete("wide")
        assert "wide" not in manager

    def test_unsharded_tenants_report_one_shard(self, manager):
        assert manager.describe("default")["shards"] == 1

    def test_adopting_a_sharded_engine_keeps_single_shard_defaults(self):
        """Regression: `serve --shards 4` shards the adopted default
        tenant, but dynamically created tenants keep the documented
        default of a single engine."""
        engine = ShardedEngine(PARAMS, config=EngineConfig(shards=4)).start()
        try:
            manager = EngineManager.adopt(engine)
            assert manager.describe("default")["shards"] == 4
            created = manager.create("plain")
            assert not isinstance(created, ShardedEngine)
            assert manager.describe("plain")["shards"] == 1
            sharded = manager.create("wide", shards=2)
            assert isinstance(sharded, ShardedEngine)
            manager.close()
        finally:
            engine.close(checkpoint=False)

    def test_sharded_tenants_persist_under_data_root(self, tmp_path):
        with EngineManager(
            PARAMS, default_engine_config=FAST, data_root=tmp_path
        ) as m:
            engine = m.create("wide", shards=2)
            for update in TRIANGLE:
                engine.submit(update)
            engine.flush(timeout=10)
            m.delete("wide")  # closes with a final checkpoint
            assert (tmp_path / "wide" / "shard-0" / "snapshot.json").exists()
            assert (tmp_path / "wide" / "shard-1" / "snapshot.json").exists()
            revived = m.create("wide", shards=2)
            assert revived.applied == 3
            groups = revived.group_by([1, 2, 3]).as_sets()
            assert sorted(map(sorted, groups)) == [[1, 2, 3]]

    def test_delete_fails_cleanly_when_a_shard_refuses_to_close(
        self, manager, monkeypatch
    ):
        """Regression (sharded tenant): a failed close must not leave a
        half-deleted tenant — the registration survives, reads keep
        working, and a retry completes the delete."""
        engine = manager.create("wide", shards=3)
        for update in TRIANGLE:
            engine.submit(update)
        engine.flush(timeout=10)

        original = ClusteringEngine.close

        def failing_close(self, checkpoint=True):
            if self is engine.shards[1]:
                raise RuntimeError("shard 1 refuses to close")
            return original(self, checkpoint=checkpoint)

        monkeypatch.setattr(ClusteringEngine, "close", failing_close)
        with pytest.raises(TenantDeleteError, match="remains registered"):
            manager.delete("wide")
        # no half-deleted state: still registered, still readable
        assert "wide" in manager
        assert manager.get("wide") is engine
        assert manager.config_of("wide").shards == 3
        assert manager.describe("wide")["tenant"] == "wide"
        groups = engine.group_by([1, 2, 3]).as_sets()
        assert sorted(map(sorted, groups)) == [[1, 2, 3]]
        # writes are rejected *loudly* while the engine is mid-close —
        # never silently swallowed into a stopped router
        from repro.service.engine import EngineClosed

        with pytest.raises(EngineClosed):
            engine.submit(Update.insert(7, 8))

        monkeypatch.setattr(ClusteringEngine, "close", original)
        manager.delete("wide")  # the retry completes
        assert "wide" not in manager
        with pytest.raises(UnknownTenantError):
            manager.get("wide")

    def test_manager_close_failure_keeps_engines_reachable_and_retryable(
        self, monkeypatch
    ):
        """A failed engine close during manager shutdown must not orphan a
        running engine behind a cleared registry — the tenant stays
        reachable and a close() retry completes."""
        manager = EngineManager(PARAMS, default_engine_config=FAST)
        engine = manager.get("default")
        original = ClusteringEngine.close

        def failing_close(self, checkpoint=True):
            raise RuntimeError("checkpoint broke")

        monkeypatch.setattr(ClusteringEngine, "close", failing_close)
        with pytest.raises(RuntimeError, match="checkpoint broke"):
            manager.close()
        # still reachable, still running, not half-shut-down
        assert "default" in manager
        assert manager.get("default") is engine
        assert engine.running
        monkeypatch.setattr(ClusteringEngine, "close", original)
        manager.close()  # the retry completes
        assert len(manager) == 0
        assert not engine.running

    def test_delete_failure_of_a_plain_tenant_is_also_clean(
        self, manager, monkeypatch
    ):
        engine = manager.create("solo")
        monkeypatch.setattr(
            engine, "close", lambda checkpoint=True: (_ for _ in ()).throw(
                RuntimeError("stuck")
            )
        )
        with pytest.raises(TenantDeleteError):
            manager.delete("solo")
        assert "solo" in manager
        monkeypatch.undo()
        manager.delete("solo")
        assert "solo" not in manager


class TestIntrospection:
    def test_describe_and_aggregate(self, manager):
        manager.create("a", queue_capacity=16)
        engine = manager.get("a")
        for update in TRIANGLE:
            engine.submit(update)
        engine.flush(timeout=10)
        row = manager.describe("a")
        assert row["tenant"] == "a"
        assert row["applied"] == 3
        assert row["queue_capacity"] == 16
        aggregate = manager.aggregate()
        assert aggregate["tenants"] == 2
        assert aggregate["applied"] == 3
        assert aggregate["ingest"]["count"] >= 1
        listing = manager.list_tenants()
        assert [row["tenant"] for row in listing] == ["a", "default"]

    def test_aggregate_exposes_per_shard_depths(self, manager):
        manager.create("wide", shards=2)
        engine = manager.get("wide")
        for update in TRIANGLE:
            engine.submit(update)
        engine.flush(timeout=10)
        aggregate = manager.aggregate()
        shards = aggregate["shards"]
        # default (1 engine) + wide (2 inner engines)
        assert shards["engines"] == 3
        assert shards["queue_depths"]["wide"] == [0, 0]
        assert "default" not in shards["queue_depths"]
