"""Regression tests: wall-clock time never enters duration arithmetic.

The service layer measures every elapsed time with the monotonic clocks
(``time.monotonic`` for schedules/deadlines, ``time.perf_counter`` for
latencies); ``time.time()`` is reserved for *event* timestamps — the
``published_at`` field of a view, the decision log's ``ts``, a shard
manifest's ``published_at``.  A wall-clock step (NTP correction, manual
clock change) must never distort a latency histogram, a flush deadline or
a load-generation schedule.

The audit itself now lives in the devtools static-analysis suite
(:mod:`repro.devtools.clocks`, code ``REPRO101``) so it runs in CI over
the whole tree via ``repro check``; this file is a thin wrapper that
drives the same checker module-by-module, pins the exact set of allowed
wall-clock sites, and keeps the behavioural ``published_at`` tests.
"""

from __future__ import annotations

import time
from pathlib import Path

import repro.service.client
import repro.service.engine
import repro.service.fleet
import repro.service.loadgen
import repro.service.manager
import repro.service.metrics
import repro.service.replication
import repro.service.server
import repro.service.sharding
import repro.service.timetravel
import repro.service.views
from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.devtools import MonotonicDisciplineChecker, load_source
from repro.devtools.clocks import wall_clock_references
from repro.service.views import ClusteringView

#: Modules that must not reference ``time.time`` at all.
DURATION_ONLY_MODULES = [
    repro.service.client,
    repro.service.engine,
    repro.service.loadgen,
    repro.service.manager,
    repro.service.metrics,
    repro.service.replication,
    repro.service.server,
    repro.service.timetravel,
]

#: Modules allowed exactly N pinned event-timestamp references.
EVENT_TIMESTAMP_MODULES = {
    repro.service.views: 1,  # published_at default_factory
    repro.service.sharding: 1,  # manifest published_at
    repro.service.fleet: 1,  # decision log {"ts": ...}
}


def _check(module):
    """Run the REPRO101 checker over one module's source file."""
    source = load_source(Path(module.__file__))
    findings = MonotonicDisciplineChecker().check(source)
    return source, findings


class TestNoWallClockInDurationMath:
    def test_service_modules_never_touch_wall_clock(self):
        for module in DURATION_ONLY_MODULES:
            source, findings = _check(module)
            _, allowed = wall_clock_references(source)
            lines = [finding.line for finding in findings]
            assert findings == [] and allowed == [], (
                f"{module.__name__} references time.time at lines "
                f"{lines or [n.lineno for n in allowed]}; elapsed-time "
                "measurement must use time.monotonic/perf_counter"
            )

    def test_event_timestamp_modules_stay_pinned(self):
        for module, expected in EVENT_TIMESTAMP_MODULES.items():
            source, findings = _check(module)
            _, allowed = wall_clock_references(source)
            assert findings == [], (
                f"{module.__name__} has unallowed time.time references at "
                f"lines {[finding.line for finding in findings]}"
            )
            assert len(allowed) == expected, (
                f"{module.__name__} should carry exactly {expected} pinned "
                "event-timestamp reference(s), found lines "
                f"{[n.lineno for n in allowed]} — extending the allowlist "
                "is a deliberate act: update this pin alongside the code"
            )


class TestPublishedAtStaysWallClock:
    def test_published_at_is_a_wall_clock_timestamp(self):
        algo = DynStrClu(StrCluParams(epsilon=0.5, mu=2, rho=0.0))
        algo.insert_edge(1, 2)
        before = time.time()
        view = ClusteringView.capture(algo, version=1)
        after = time.time()
        assert before <= view.published_at <= after

    def test_patched_views_get_fresh_timestamps(self):
        algo = DynStrClu(StrCluParams(epsilon=0.5, mu=2, rho=0.0))
        algo.insert_edge(1, 2)
        algo.drain_view_delta()
        view = ClusteringView.capture(algo, version=1)
        algo.insert_edge(2, 3)
        patched = view.patched(algo, algo.drain_view_delta().flips, version=2)
        assert patched is not None
        assert patched.published_at >= view.published_at
