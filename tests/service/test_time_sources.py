"""Regression tests: wall-clock time never enters duration arithmetic.

The service layer measures every elapsed time with the monotonic clocks
(``time.monotonic`` for schedules/deadlines, ``time.perf_counter`` for
latencies); ``time.time()`` is reserved for *event* timestamps — exactly
one use, the ``published_at`` field of a view.  A wall-clock step (NTP
correction, manual clock change) must never distort a latency histogram,
a flush deadline or a load-generation schedule, so this test audits the
service modules' sources for ``time.time`` references and pins the one
legitimate exception.
"""

from __future__ import annotations

import ast
import inspect
import time

import repro.service.engine
import repro.service.loadgen
import repro.service.manager
import repro.service.metrics
import repro.service.replication
import repro.service.server
import repro.service.views
from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.service.views import ClusteringView

#: Modules that must not reference ``time.time`` at all.
DURATION_ONLY_MODULES = [
    repro.service.engine,
    repro.service.metrics,
    repro.service.loadgen,
    repro.service.manager,
    repro.service.replication,
    repro.service.server,
]


def _wall_clock_references(module) -> list:
    """Line numbers of every ``time.time`` attribute reference in a module."""
    tree = ast.parse(inspect.getsource(module))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Attribute)
        and node.attr == "time"
        and isinstance(node.value, ast.Name)
        and node.value.id == "time"
    ]


class TestNoWallClockInDurationMath:
    def test_service_modules_never_touch_wall_clock(self):
        for module in DURATION_ONLY_MODULES:
            references = _wall_clock_references(module)
            assert references == [], (
                f"{module.__name__} references time.time at lines {references}; "
                "elapsed-time measurement must use time.monotonic/perf_counter"
            )

    def test_views_use_wall_clock_only_for_published_at(self):
        references = _wall_clock_references(repro.service.views)
        assert len(references) == 1, (
            "views.py should reference time.time exactly once "
            f"(the published_at default), found lines {references}"
        )


class TestPublishedAtStaysWallClock:
    def test_published_at_is_a_wall_clock_timestamp(self):
        algo = DynStrClu(StrCluParams(epsilon=0.5, mu=2, rho=0.0))
        algo.insert_edge(1, 2)
        before = time.time()
        view = ClusteringView.capture(algo, version=1)
        after = time.time()
        assert before <= view.published_at <= after

    def test_patched_views_get_fresh_timestamps(self):
        algo = DynStrClu(StrCluParams(epsilon=0.5, mu=2, rho=0.0))
        algo.insert_edge(1, 2)
        algo.drain_view_delta()
        view = ClusteringView.capture(algo, version=1)
        algo.insert_edge(2, 3)
        patched = view.patched(algo, algo.drain_view_delta().flips, version=2)
        assert patched is not None
        assert patched.published_at >= view.published_at
