"""End-to-end tests of the JSON/HTTP server and its client."""

from __future__ import annotations

import json

import pytest

import repro
from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.service.client import BackpressureError, ServiceClient, ServiceError
from repro.service.engine import ClusteringEngine, EngineConfig
from repro.service.server import BackgroundServer, decode_updates, encode_update

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)

TRIANGLES = [
    Update.insert(1, 2),
    Update.insert(2, 3),
    Update.insert(1, 3),
    Update.insert(4, 5),
    Update.insert(5, 6),
    Update.insert(4, 6),
]


@pytest.fixture
def service():
    engine = ClusteringEngine(
        PARAMS, config=EngineConfig(batch_size=8, flush_interval=0.01)
    )
    with engine, BackgroundServer(engine) as background:
        client = ServiceClient("127.0.0.1", background.port)
        yield engine, client
        client.close()


class TestWireFormat:
    def test_encode_decode_round_trip(self):
        updates = [Update.insert(1, 2), Update.delete("a", "b")]
        wire = {"updates": [encode_update(u) for u in updates]}
        assert decode_updates(json.loads(json.dumps(wire))) == updates

    def test_decode_rejects_malformed(self):
        from repro.service.server import BadRequest

        with pytest.raises(BadRequest):
            decode_updates({"updates": [["*", 1, 2]]})
        with pytest.raises(BadRequest):
            decode_updates({"updates": [[1, 2]]})
        with pytest.raises(BadRequest):
            decode_updates({"nope": []})
        with pytest.raises(BadRequest):
            decode_updates({"updates": [["+", 1.5, 2]]})


class TestRoutes:
    def test_healthz(self, service):
        _engine, client = service
        document = client.healthz()
        assert document["status"] == "ok"
        assert document["version"] == repro.__version__

    def test_ingest_then_query(self, service):
        engine, client = service
        assert client.submit_updates(TRIANGLES) == 6
        engine.flush(timeout=10)
        result = client.group_by([1, 2, 4, 6])
        assert {frozenset(g) for g in result.as_sets()} == {
            frozenset({1, 2}),
            frozenset({4, 6}),
        }
        assert client.cluster_of(1) != client.cluster_of(4)
        raw = client.group_by_raw([1, 2])
        assert raw["view_version"] == 6

    def test_stats(self, service):
        engine, client = service
        client.submit_updates(TRIANGLES[:3])
        engine.flush(timeout=10)
        document = client.stats()
        assert document["applied"] == 3
        assert document["view_version"] == 3
        assert "metrics" in document
        assert document["metrics"]["counters"]["updates_applied"] == 3

    def test_string_vertices(self, service):
        engine, client = service
        client.submit_updates(
            [Update.insert("a", "b"), Update.insert("b", "c"), Update.insert("a", "c")]
        )
        engine.flush(timeout=10)
        result = client.group_by(["a", "b", "c"])
        assert {frozenset(g) for g in result.as_sets()} == {frozenset({"a", "b", "c"})}
        assert client.cluster_of("a") == client.cluster_of("b")

    def test_unknown_route_and_bad_method(self, service):
        _engine, client = service
        with pytest.raises(ServiceError) as excinfo:
            client._expect_ok("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._expect_ok("GET", "/updates")
        assert excinfo.value.status == 405

    def test_bad_json_body(self, service):
        _engine, client = service
        status, document, _headers = client._request("POST", "/group-by", payload=None)
        # no body at all: the server answers 400, not a connection error
        assert status == 400
        assert "error" in document

    def test_numeric_string_vertices_are_lossless_across_routes(self, service):
        """Regression: JSON "1" and 1 are *distinct* vertices on every route.

        The pre-v1 server collapsed numeric strings to ints on ingest,
        group-by and the cluster route, so a string vertex silently merged
        with its int namesake.  Canonicalisation is now explicit and
        lossless: the string triangle clusters on its own, and the int
        vertices remain unknown.
        """
        engine, client = service
        client.submit_updates(
            [Update.insert("1", "2"), Update.insert("2", "3"), Update.insert("1", "3")]
        )
        engine.flush(timeout=10)
        by_str = client.group_by(["1", "2", "3"])
        assert {frozenset(g) for g in by_str.as_sets()} == {frozenset({"1", "2", "3"})}
        # the ints were never inserted: the same query by int finds nothing
        assert client.group_by([1, 2, 3]).as_sets() == []
        # mixed query returns only the string community, types preserved
        mixed = client.group_by([1, "1", 2, "2"])
        assert {frozenset(g) for g in mixed.as_sets()} == {frozenset({"1", "2"})}
        # the cluster route distinguishes the two via the ~ token escape
        assert client.cluster_of("1") != []
        assert client.cluster_of(1) == []

    def test_malformed_content_length_gets_400_not_reset(self, service):
        import http.client

        _engine, client = service
        connection = http.client.HTTPConnection(client.host, client.port, timeout=5)
        connection.putrequest("POST", "/group-by", skip_host=False)
        connection.putheader("Content-Length", "abc")
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 400
        assert b"Content-Length" in response.read()
        connection.close()

    def test_handler_crash_returns_500_not_connection_abort(self, service):
        engine, client = service
        engine.stats = lambda: (_ for _ in ()).throw(RuntimeError("injected"))
        with pytest.raises(ServiceError) as excinfo:
            client.stats()
        assert excinfo.value.status == 500
        # and the connection is still usable afterwards
        assert client.healthz()["status"] == "ok"

    def test_backpressure_maps_to_503(self):
        # a never-started engine cannot drain its queue: the second batch
        # must overflow the 4-slot queue and surface as a 503
        engine = ClusteringEngine(PARAMS, config=EngineConfig(queue_capacity=4))
        try:
            with BackgroundServer(engine) as background:
                client = ServiceClient("127.0.0.1", background.port)
                with pytest.raises(BackpressureError) as excinfo:
                    client.submit_updates(TRIANGLES)
                assert excinfo.value.accepted == 4
                client.close()
        finally:
            engine.close(checkpoint=False)
