"""End-to-end tests of the v1 multi-tenant HTTP API.

Covers the versioned routes (tenant admin + the four per-tenant routes),
the structured error envelope, 429 backpressure with Retry-After, tenant
isolation over the wire, and the legacy unversioned routes' mapping to the
``default`` tenant.
"""

from __future__ import annotations

import http.client
import json

import pytest

import repro
from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.service.client import BackpressureError, ServiceClient, ServiceError
from repro.service.engine import ClusteringEngine, EngineConfig
from repro.service.manager import EngineManager
from repro.service.server import BackgroundServer

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
FAST = EngineConfig(batch_size=8, flush_interval=0.01)

TRIANGLES = [
    Update.insert(1, 2),
    Update.insert(2, 3),
    Update.insert(1, 3),
    Update.insert(4, 5),
    Update.insert(5, 6),
    Update.insert(4, 6),
]


@pytest.fixture
def service():
    with EngineManager(PARAMS, default_engine_config=FAST) as manager:
        with BackgroundServer(manager) as background:
            client = ServiceClient("127.0.0.1", background.port)
            yield manager, background, client
            client.close()


def _raw(background, method, path, payload=None):
    """One raw HTTP request; returns (status, headers, document)."""
    connection = http.client.HTTPConnection("127.0.0.1", background.port, timeout=5)
    body = None if payload is None else json.dumps(payload)
    headers = {"Content-Type": "application/json"} if body is not None else {}
    connection.request(method, path, body=body, headers=headers)
    response = connection.getresponse()
    raw = response.read()
    document = json.loads(raw) if raw else None
    result = response.status, dict(response.getheaders()), document
    connection.close()
    return result


class TestTenantAdmin:
    def test_healthz_reports_aggregate(self, service):
        _manager, _background, client = service
        document = client.healthz()
        assert document["status"] == "ok"
        assert document["version"] == repro.__version__
        assert document["api"] == "v1"
        assert document["tenants"] == 1

    def test_list_create_describe_delete(self, service):
        manager, _background, client = service
        assert [t["tenant"] for t in client.list_tenants()] == ["default"]
        created = client.create_tenant(
            "acme", backend="pscan", queue_capacity=32, params={"epsilon": 0.4}
        )
        assert created["tenant"] == "acme"
        assert created["backend"] == "pscan"
        assert created["queue_capacity"] == 32
        assert manager.config_of("acme").params.epsilon == 0.4
        assert [t["tenant"] for t in client.list_tenants()] == ["acme", "default"]
        assert client.describe_tenant("acme")["backend"] == "pscan"
        client.delete_tenant("acme")
        assert [t["tenant"] for t in client.list_tenants()] == ["default"]

    def test_create_conflict_and_exist_ok(self, service):
        _manager, _background, client = service
        client.create_tenant("dup")
        with pytest.raises(ServiceError) as excinfo:
            client.create_tenant("dup")
        assert excinfo.value.status == 409
        assert excinfo.value.code == "tenant_exists"
        # exist_ok swallows the conflict and returns the description
        assert client.create_tenant("dup", exist_ok=True)["tenant"] == "dup"

    def test_bad_tenant_payloads_get_400(self, service):
        _manager, background, client = service
        for payload in (None, {}, {"tenant": 7}, {"tenant": "x", "backend": 3},
                        {"tenant": "x", "queue_capacity": "big"},
                        {"tenant": "bad/name"},
                        {"tenant": "x", "backend": "nope"},
                        {"tenant": "x", "params": {"epsilon": 7.0}},
                        {"tenant": "x", "params": {"bogus": 1}}):
            status, _headers, document = _raw(background, "POST", "/v1/tenants", payload)
            assert status == 400, payload
            assert document["error"]["code"] == "bad_request"

    def test_unknown_tenant_envelope(self, service):
        _manager, background, client = service
        status, _headers, document = _raw(background, "GET", "/v1/tenants/ghost/stats")
        assert status == 404
        envelope = document["error"]
        assert envelope["code"] == "unknown_tenant"
        assert envelope["retryable"] is False
        assert "ghost" in envelope["message"]

    def test_unknown_v1_route_and_method_not_allowed(self, service):
        _manager, background, _client = service
        status, _headers, document = _raw(background, "GET", "/v1/nope")
        assert status == 404
        assert document["error"]["code"] == "not_found"
        status, _headers, document = _raw(background, "DELETE", "/v1/tenants/default/stats")
        assert status == 405
        assert document["error"]["code"] == "method_not_allowed"


class TestPerTenantRoutes:
    def test_ingest_query_stats_cluster(self, service):
        manager, _background, client = service
        client.create_tenant("acme")
        acme = client.for_tenant("acme")
        assert acme.submit_updates(TRIANGLES) == 6
        manager.get("acme").flush(timeout=10)
        result = acme.group_by([1, 2, 4, 6])
        assert {frozenset(g) for g in result.as_sets()} == {
            frozenset({1, 2}),
            frozenset({4, 6}),
        }
        assert acme.cluster_of(1) != acme.cluster_of(4)
        stats = acme.stats()
        assert stats["tenant"] == "acme"
        assert stats["applied"] == 6
        assert stats["backend"] == "dynstrclu"
        acme.close()

    def test_tenants_are_isolated_over_the_wire(self, service):
        manager, _background, client = service
        client.create_tenant("a")
        client.create_tenant("b")
        a, b = client.for_tenant("a"), client.for_tenant("b")
        a.submit_updates(TRIANGLES[:3])
        manager.get("a").flush(timeout=10)
        assert {frozenset(g) for g in a.group_by([1, 2, 3]).as_sets()} == {
            frozenset({1, 2, 3})
        }
        # tenant a's updates never appear in tenant b's group-by
        assert b.group_by([1, 2, 3]).as_sets() == []
        assert b.stats()["applied"] == 0
        a.close()
        b.close()

    def test_baseline_backend_serves_the_same_surface(self, service):
        manager, _background, client = service
        client.create_tenant("exact", backend="scan-exact")
        exact = client.for_tenant("exact")
        exact.submit_updates(TRIANGLES[:3])
        manager.get("exact").flush(timeout=10)
        assert {frozenset(g) for g in exact.group_by([1, 2, 3]).as_sets()} == {
            frozenset({1, 2, 3})
        }
        assert exact.stats()["backend"] == "scan-exact"
        exact.close()


class TestBackpressure429:
    def test_429_envelope_retry_after_and_client_exception(self):
        # a never-started engine cannot drain its queue: the batch overflows
        engine = ClusteringEngine(PARAMS, config=EngineConfig(queue_capacity=4))
        try:
            with BackgroundServer(engine) as background:
                status, headers, document = _raw(
                    background,
                    "POST",
                    "/v1/tenants/default/updates",
                    {"updates": [["+", i, i + 1] for i in range(8)]},
                )
                assert status == 429
                assert int(headers["Retry-After"]) >= 1
                envelope = document["error"]
                assert envelope["code"] == "backpressure"
                assert envelope["retryable"] is True
                assert document["accepted"] == 4
                assert document["submitted"] == 8
                assert document["queue_depth"] == 4
                assert document["queue_capacity"] == 4
                assert document["retry_after_ms"] >= 1

                client = ServiceClient("127.0.0.1", background.port)
                with pytest.raises(BackpressureError) as excinfo:
                    client.submit_updates([Update.insert(10, 11)])
                exc = excinfo.value
                assert exc.status == 429
                assert exc.code == "backpressure"
                assert exc.retryable
                assert exc.queue_depth == 4
                assert exc.queue_capacity == 4
                assert exc.retry_after_ms >= 1
                client.close()
        finally:
            engine.close(checkpoint=False)


class TestLosslessVertexTokens:
    def test_cluster_route_distinguishes_int_and_string(self, service):
        manager, background, client = service
        client.submit_updates(
            [Update.insert("7", "8"), Update.insert("8", "9"), Update.insert("7", "9")]
        )
        manager.get("default").flush(timeout=10)
        # the escaped token addresses the string vertex...
        status, _headers, document = _raw(
            background, "GET", "/v1/tenants/default/cluster/~7"
        )
        assert status == 200
        assert document["vertex"] == "7"
        assert document["clusters"] != []
        # ...the bare token the (absent) int vertex
        status, _headers, document = _raw(
            background, "GET", "/v1/tenants/default/cluster/7"
        )
        assert document["vertex"] == 7
        assert document["clusters"] == []
        # and the typed client round-trips both transparently
        assert client.cluster_of("7") != []
        assert client.cluster_of(7) == []

    def test_cluster_route_round_trips_non_ascii_ids(self, service):
        """The client percent-encodes the token; the v1 server decodes it."""
        manager, _background, client = service
        client.submit_updates(
            [
                Update.insert("café", "münchen"),
                Update.insert("münchen", "tōkyō"),
                Update.insert("café", "tōkyō"),
            ]
        )
        manager.get("default").flush(timeout=10)
        assert client.cluster_of("café") != []
        assert client.cluster_of("café") == client.cluster_of("tōkyō")

    def test_legacy_cluster_route_keeps_verbatim_tokens(self, service):
        """Frozen pre-v1 semantics: no ~ unescaping on /cluster/{v}."""
        manager, background, client = service
        client.submit_updates(
            [Update.insert("~z", "~w"), Update.insert("~w", "~q"), Update.insert("~z", "~q")]
        )
        manager.get("default").flush(timeout=10)
        status, _headers, document = _raw(background, "GET", "/cluster/~z")
        assert status == 200
        assert document["vertex"] == "~z"
        assert document["clusters"] != []

    def test_cluster_route_accepts_slash_bearing_string_ids(self, service):
        """Any WAL-legal identifier is addressable, '/' included."""
        manager, background, client = service
        client.submit_updates(
            [
                Update.insert("a/b", "c/d"),
                Update.insert("c/d", "e/f"),
                Update.insert("a/b", "e/f"),
            ]
        )
        manager.get("default").flush(timeout=10)
        status, _headers, document = _raw(
            background, "GET", "/v1/tenants/default/cluster/a/b"
        )
        assert status == 200
        assert document["vertex"] == "a/b"
        assert document["clusters"] != []
        assert client.cluster_of("a/b") != []


class TestEngineUnavailable503:
    def test_closed_engine_is_service_error_not_backpressure(self):
        """A 503 engine_unavailable must not masquerade as load shedding."""
        engine = ClusteringEngine(PARAMS, config=FAST).start()
        engine.close(checkpoint=False)
        with BackgroundServer(engine) as background:
            client = ServiceClient("127.0.0.1", background.port)
            with pytest.raises(ServiceError) as excinfo:
                client.submit_updates([Update.insert(1, 2)])
            exc = excinfo.value
            assert not isinstance(exc, BackpressureError)
            assert exc.status == 503
            assert exc.code == "engine_unavailable"
            assert exc.retryable
            client.close()


class TestLegacyRoutes:
    def test_legacy_routes_serve_default_tenant(self, service):
        manager, background, client = service
        status, headers, document = _raw(
            background, "POST", "/updates", {"updates": [["+", 1, 2], ["+", 2, 3], ["+", 1, 3]]}
        )
        assert status == 200
        assert document == {"accepted": 3, "submitted": 3}
        assert headers.get("Deprecation") == "true"
        manager.get("default").flush(timeout=10)

        status, _headers, document = _raw(background, "GET", "/stats")
        assert status == 200
        assert document["applied"] == 3

        status, _headers, document = _raw(
            background, "POST", "/group-by", {"vertices": [1, 2, 3]}
        )
        assert status == 200
        assert sorted(document["groups"].values()) == [[1, 2, 3]]

        status, _headers, document = _raw(background, "GET", "/cluster/1")
        assert status == 200
        assert document["clusters"] != []

        status, _headers, document = _raw(background, "GET", "/healthz")
        assert status == 200
        assert document["view_version"] == 3
        # and the v1 surface sees the same state
        assert client.stats()["applied"] == 3

    def test_legacy_backpressure_stays_503_flat(self):
        engine = ClusteringEngine(PARAMS, config=EngineConfig(queue_capacity=2))
        try:
            with BackgroundServer(engine) as background:
                status, _headers, document = _raw(
                    background,
                    "POST",
                    "/updates",
                    {"updates": [["+", i, i + 1] for i in range(5)]},
                )
                assert status == 503
                assert document["error"] == "backpressure"
                assert document["accepted"] == 2
        finally:
            engine.close(checkpoint=False)

    def test_legacy_errors_stay_flat_strings(self, service):
        _manager, background, _client = service
        status, _headers, document = _raw(background, "GET", "/nope")
        assert status == 404
        assert isinstance(document["error"], str)
        status, _headers, document = _raw(background, "GET", "/updates")
        assert status == 405
        assert isinstance(document["error"], str)


class TestShardedTenantsOverHTTP:
    """The sharded engine behind the unchanged v1 surface."""

    def test_create_drive_and_inspect_a_sharded_tenant(self, service):
        _manager, background, client = service
        row = client.create_tenant("wide", shards=2)
        assert row["shards"] == 2
        wide = client.for_tenant("wide")
        assert wide.submit_updates(TRIANGLES) == len(TRIANGLES)
        _manager.get("wide").flush(timeout=10)

        stats = wide.stats()
        assert stats["num_shards"] == 2
        assert [s["shard"] for s in stats["shards"]] == [0, 1]
        assert all("queue_depth" in s for s in stats["shards"])
        assert stats["applied"] == len(TRIANGLES)

        groups = wide.group_by([1, 2, 3, 4, 5, 6])
        assert sorted(sorted(g) for g in groups.as_sets()) == [
            [1, 2, 3],
            [4, 5, 6],
        ]
        assert wide.cluster_of(1) == wide.cluster_of(2)

        health = client.healthz()
        assert health["shards"]["engines"] >= 3  # default + 2 inner engines
        assert health["shards"]["queue_depths"]["wide"] == [0, 0]
        wide.close()

    def test_invalid_shards_payload_is_a_400(self, service):
        _manager, background, _client = service
        status, _headers, document = _raw(
            background, "POST", "/v1/tenants", {"tenant": "x", "shards": "four"}
        )
        assert status == 400
        assert document["error"]["code"] == "bad_request"
        status, _headers, document = _raw(
            background, "POST", "/v1/tenants", {"tenant": "x", "shards": 0}
        )
        assert status == 400

    def test_sharded_tenant_isolation_over_the_wire(self, service):
        _manager, background, client = service
        client.create_tenant("wide", shards=3)
        wide = client.for_tenant("wide")
        wide.submit_updates(TRIANGLES)
        _manager.get("wide").flush(timeout=10)
        # the default tenant saw nothing
        assert client.stats()["applied"] == 0
        assert client.group_by([1, 2, 3]).as_sets() == []
        wide.close()
