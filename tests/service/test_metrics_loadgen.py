"""Tests for the latency histograms and the open-loop load generator."""

from __future__ import annotations

import pytest

from repro.core.config import StrCluParams
from repro.graph.generators import planted_partition_graph
from repro.service.engine import ClusteringEngine, EngineConfig
from repro.service.loadgen import (
    EngineTarget,
    LoadGenConfig,
    LoadGenerator,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.workloads.updates import generate_update_sequence

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.percentile(50) == 0.0
        assert histogram.mean == 0.0

    def test_percentiles_bracket_samples(self):
        histogram = LatencyHistogram()
        for _ in range(90):
            histogram.observe(0.001)
        for _ in range(10):
            histogram.observe(0.1)
        p50 = histogram.percentile(50)
        p99 = histogram.percentile(99)
        # bucket resolution is a factor of two: generous but honest brackets
        assert 0.0005 <= p50 <= 0.002
        assert 0.04 <= p99 <= 0.2
        assert p50 < p99
        assert histogram.max_value == pytest.approx(0.1)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)

    def test_summary_keys(self):
        histogram = LatencyHistogram()
        histogram.observe(0.01)
        summary = histogram.summary()
        assert set(summary) == {"count", "mean_s", "p50_s", "p90_s", "p99_s", "max_s"}
        assert summary["count"] == 1


class TestLatencyHistogramEdgeCases:
    """Pinned semantics for the degenerate percentile inputs."""

    def test_empty_histogram_returns_zero_everywhere(self):
        histogram = LatencyHistogram()
        for p in (0.0, 50.0, 100.0):
            assert histogram.percentile(p) == 0.0

    def test_p0_is_a_lower_bound_on_the_minimum(self):
        histogram = LatencyHistogram()
        histogram.observe(0.003)
        histogram.observe(0.1)
        p0 = histogram.percentile(0)
        assert 0.0 < p0 <= 0.003

    def test_p100_is_exactly_the_maximum(self):
        histogram = LatencyHistogram()
        for value in (0.004, 0.019, 0.0077):
            histogram.observe(value)
        assert histogram.percentile(100) == pytest.approx(0.019)

    def test_all_zero_samples(self):
        histogram = LatencyHistogram()
        for _ in range(10):
            histogram.observe(0.0)
        assert histogram.percentile(50) == 0.0
        assert histogram.percentile(100) == 0.0
        assert histogram.mean == 0.0

    def test_overflow_bucket_never_exceeds_max(self):
        histogram = LatencyHistogram()
        huge = 200.0  # beyond the ~137 s top bucket bound
        histogram.observe(huge)
        histogram.observe(150.0)
        for p in (0.0, 50.0, 99.0, 100.0):
            assert histogram.percentile(p) <= huge
        assert histogram.percentile(100) == pytest.approx(huge)

    def test_nan_samples_are_dropped(self):
        histogram = LatencyHistogram()
        histogram.observe(float("nan"))
        assert histogram.count == 0
        histogram.observe(0.01)
        assert histogram.count == 1

    def test_negative_samples_clamp_to_zero(self):
        histogram = LatencyHistogram()
        histogram.observe(-1.0)
        assert histogram.count == 1
        assert histogram.max_value == 0.0
        assert histogram.percentile(100) == 0.0

    def test_infinite_samples_stay_finite_in_stats_json(self):
        import json
        import math

        histogram = LatencyHistogram()
        histogram.observe(float("inf"))
        histogram.observe(0.5)
        summary = histogram.summary()
        for value in summary.values():
            assert math.isfinite(value)
        # allow_nan=False raises on NaN/Infinity: the JSON must be strict
        json.loads(json.dumps(summary, allow_nan=False))

    def test_service_metrics_snapshot_is_strict_json(self):
        import json

        metrics = ServiceMetrics()
        metrics.start_clock()
        metrics.observe_batch(3, float("inf"))
        metrics.observe_query(float("nan"))
        metrics.observe_view_capture(0.001, "incremental", flip_set_size=7)
        metrics.observe_view_capture(0.25, "full")
        snapshot = metrics.snapshot()
        json.loads(json.dumps(snapshot, allow_nan=False))
        capture = snapshot["view_capture"]
        assert capture["count"] == 2
        assert capture["flip_set_size"] == {
            "count": 1, "total": 7, "mean": 7.0, "max": 7, "last": 7,
        }
        assert snapshot["counters"]["view_capture_incremental"] == 1
        assert snapshot["counters"]["view_capture_full"] == 1


class TestServiceMetrics:
    def test_counters_and_throughput(self):
        metrics = ServiceMetrics()
        metrics.start_clock()
        metrics.observe_batch(10, 0.002)
        metrics.observe_batch(5, 0.001)
        metrics.observe_query(0.0005)
        assert metrics.get("updates_applied") == 15
        assert metrics.get("batches") == 2
        assert metrics.get("queries") == 1
        assert metrics.updates_per_second() > 0
        document = metrics.snapshot()
        assert document["ingest"]["count"] == 2
        assert document["query"]["count"] == 1
        assert document["counters"]["updates_applied"] == 15

    def test_snapshot_without_clock(self):
        metrics = ServiceMetrics()
        document = metrics.snapshot()
        assert document["elapsed_s"] == 0.0
        assert document["updates_per_second"] == 0.0


def _stream(num_updates=120):
    edges = planted_partition_graph(2, 8, 0.8, 0.1, seed=3)
    workload = generate_update_sequence(16, edges, num_updates, eta=0.2, seed=7)
    return list(workload.all_updates())


class TestLoadGenerator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadGenConfig(rate=-1)
        with pytest.raises(ValueError):
            LoadGenConfig(ingest_batch=0)
        with pytest.raises(ValueError):
            LoadGenConfig(query_ratio=1.5)
        with pytest.raises(ValueError):
            LoadGenConfig(query_size=0)

    def test_full_speed_run_ingests_everything(self):
        stream = _stream()
        with ClusteringEngine(
            PARAMS, config=EngineConfig(batch_size=16, flush_interval=0.01)
        ) as engine:
            generator = LoadGenerator(
                EngineTarget(engine),
                stream,
                config=LoadGenConfig(ingest_batch=8, query_ratio=0.25, seed=1),
            )
            report = generator.run()
            engine.flush(timeout=30)
            assert report.updates_sent == len(stream)
            assert report.updates_accepted == len(stream)
            assert report.updates_rejected == 0
            assert report.query_requests > 0
            assert report.errors == []
            assert engine.applied == len(stream)
            assert generator.metrics.query.count == report.query_requests

    def test_rate_limited_run_paces_requests(self):
        stream = _stream(num_updates=0)[:20]  # 20 hot-start inserts
        with ClusteringEngine(PARAMS) as engine:
            config = LoadGenConfig(
                rate=200.0, ingest_batch=1, query_ratio=0.0, seed=2
            )
            generator = LoadGenerator(EngineTarget(engine), stream, config=config)
            report = generator.run()
            # 20 requests at 200/s: at least ~95 ms of schedule
            assert report.wall_seconds >= 0.08
            assert report.updates_sent == 20

    def test_backpressure_is_recorded_not_fatal(self):
        stream = _stream()
        engine = ClusteringEngine(PARAMS, config=EngineConfig(queue_capacity=8))
        try:
            # writer thread never started: every slot beyond 8 is shed
            generator = LoadGenerator(
                EngineTarget(engine),
                stream,
                config=LoadGenConfig(ingest_batch=4, query_ratio=0.0, seed=3),
            )
            report = generator.run()
            assert report.updates_accepted == 8
            assert report.updates_rejected == report.updates_sent - 8
            assert report.errors == []
        finally:
            engine.close(checkpoint=False)

    def test_report_as_dict_is_json_friendly(self):
        import json

        stream = _stream(num_updates=10)
        with ClusteringEngine(PARAMS) as engine:
            generator = LoadGenerator(EngineTarget(engine), stream)
            report = generator.run()
        document = report.as_dict()
        assert json.loads(json.dumps(document)) == document
        assert "client_metrics" in document
