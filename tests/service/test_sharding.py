"""Unit tests of the sharded clustering engine.

Covers the partitioning function, the boundary-replication and scoped-
labelling invariants, merged-view memoisation and statistics, the merged
backpressure contract, per-shard durability (manifest, recovery,
replica reconciliation) and fail-clean close semantics.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.graph.dynamic_graph import canonical_edge
from repro.service.engine import (
    ClusteringEngine,
    EngineBackpressure,
    EngineClosed,
    EngineConfig,
    EngineError,
)
from repro.service.sharding import (
    MANIFEST_FILE,
    ShardedEngine,
    ShardedView,
    make_engine,
    make_label_scope,
    shard_of,
)

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
FAST = EngineConfig(batch_size=16, flush_interval=0.005, shards=3)


def toggle_stream(num_vertices: int, length: int, seed: int):
    """A random applicable insert/delete stream over a small universe."""
    rng = random.Random(seed)
    present = set()
    stream = []
    while len(stream) < length:
        u, v = rng.randrange(num_vertices), rng.randrange(num_vertices)
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in present:
            present.discard(edge)
            stream.append(Update.delete(*edge))
        else:
            present.add(edge)
            stream.append(Update.insert(*edge))
    return stream


def sequential_reference(stream, params=PARAMS):
    algo = DynStrClu(params)
    for update in stream:
        algo.apply(update)
    return algo


class TestPartitioning:
    def test_shard_of_is_stable_and_in_range(self):
        for n in (1, 2, 3, 7):
            for v in (0, 1, 12345, "a", "12345", "x/y", "~weird"):
                index = shard_of(v, n)
                assert 0 <= index < n
                assert shard_of(v, n) == index  # deterministic

    def test_int_and_string_identifiers_hash_independently(self):
        # the partition is over canonical tokens: 123 and "123" are
        # different vertices and may land anywhere — but each consistently
        assert shard_of(123, 4) == shard_of(123, 4)
        assert shard_of("123", 4) == shard_of("123", 4)

    def test_single_shard_is_always_zero(self):
        assert all(shard_of(v, 1) == 0 for v in range(100))

    def test_distribution_covers_every_shard(self):
        owners = {shard_of(v, 4) for v in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_label_scope_requires_both_endpoints_owned(self):
        scope = make_label_scope(shard_of(1, 3), 3)
        same = [v for v in range(100) if shard_of(v, 3) == shard_of(1, 3)]
        other = [v for v in range(100) if shard_of(v, 3) != shard_of(1, 3)]
        assert scope(1, same[1])
        assert not scope(1, other[0])
        assert not scope(other[0], other[0])


class TestMakeEngine:
    def test_one_shard_builds_the_plain_engine(self):
        engine = make_engine(PARAMS, config=EngineConfig(shards=1))
        try:
            assert isinstance(engine, ClusteringEngine)
            assert not isinstance(engine, ShardedEngine)
        finally:
            engine.close(checkpoint=False)

    def test_many_shards_build_the_sharded_engine(self):
        engine = make_engine(PARAMS, config=EngineConfig(shards=3))
        try:
            assert isinstance(engine, ShardedEngine)
            assert engine.num_shards == 3
            assert len(engine.shards) == 3
        finally:
            engine.close(checkpoint=False)

    def test_sharded_engine_rejects_single_shard_config(self):
        with pytest.raises(ValueError):
            ShardedEngine(PARAMS, config=EngineConfig(shards=1))

    def test_engine_config_validates_shards(self):
        with pytest.raises(ValueError):
            EngineConfig(shards=0)
        # one tenant-create must not be able to spawn unbounded engines
        with pytest.raises(ValueError, match="64"):
            EngineConfig(shards=100_000)

    def test_shape_mismatched_data_dirs_are_refused(self, tmp_path):
        unsharded_dir = tmp_path / "plain"
        with ClusteringEngine(PARAMS, data_dir=unsharded_dir) as engine:
            engine.submit(Update.insert(1, 2))
            engine.flush(timeout=10)
        # unsharded layout reopened sharded: never silently start empty
        with pytest.raises(ValueError, match="unsharded"):
            ShardedEngine(
                PARAMS, config=EngineConfig(shards=2), data_dir=unsharded_dir
            )
        sharded_dir = tmp_path / "wide"
        with ShardedEngine(
            PARAMS, config=EngineConfig(shards=2), data_dir=sharded_dir
        ) as engine:
            engine.submit(Update.insert(1, 2))
            engine.flush(timeout=10)
        # sharded layout reopened unsharded through the factory: refused
        with pytest.raises(ValueError, match="sharded"):
            make_engine(
                PARAMS, config=EngineConfig(shards=1), data_dir=sharded_dir
            )


class TestReplicationInvariants:
    def test_every_edge_lives_in_both_owner_shards(self):
        stream = toggle_stream(12, 200, seed=5)
        with ShardedEngine(PARAMS, config=FAST) as engine:
            for update in stream:
                engine.submit(update)
            engine.flush(timeout=30)
            reference = sequential_reference(stream)
            for u, v in reference.graph.edges():
                for index in {shard_of(u, 3), shard_of(v, 3)}:
                    assert engine.shards[index].maintainer.graph.has_edge(u, v)
            # and nothing extra: the union of shard edges is the graph
            union = set()
            for shard in engine.shards:
                union.update(
                    canonical_edge(u, v) for u, v in shard.maintainer.graph.edges()
                )
            expected = {
                canonical_edge(u, v) for u, v in reference.graph.edges()
            }
            assert union == expected

    def test_shards_label_only_their_owned_edges(self):
        stream = toggle_stream(12, 200, seed=6)
        with ShardedEngine(PARAMS, config=FAST) as engine:
            for update in stream:
                engine.submit(update)
            engine.flush(timeout=30)
            for shard in engine.shards:
                for u, v in shard.maintainer.labels:
                    assert shard_of(u, 3) == shard.shard_index
                    assert shard_of(v, 3) == shard.shard_index

    def test_router_counts_cross_shard_updates(self):
        stream = toggle_stream(12, 120, seed=7)
        with ShardedEngine(PARAMS, config=FAST) as engine:
            for update in stream:
                engine.submit(update)
            engine.flush(timeout=30)
            expected = sum(
                1
                for update in stream
                if shard_of(update.u, 3) != shard_of(update.v, 3)
            )
            assert engine.metrics.get("cross_shard_updates") == expected

    def test_noop_updates_are_filtered_by_the_router(self):
        with ShardedEngine(PARAMS, config=FAST) as engine:
            engine.submit(Update.insert(1, 2))
            engine.submit(Update.insert(1, 2))  # duplicate insert
            engine.submit(Update.delete(3, 4))  # delete of a missing edge
            engine.submit(Update.insert(5, 5))  # self-loop
            engine.flush(timeout=30)
            assert engine.applied == 1
            assert engine.metrics.get("updates_rejected") == 3


class TestMergedReads:
    def test_merged_view_is_memoised_per_view_tuple(self):
        with ShardedEngine(PARAMS, config=FAST) as engine:
            for update in toggle_stream(10, 60, seed=8):
                engine.submit(update)
            engine.flush(timeout=30)
            first = engine.view()
            assert engine.view() is first  # unchanged system: cached merge
            engine.submit(Update.insert(100, 101))
            engine.flush(timeout=30)
            second = engine.view()
            assert second is not first
            assert second.version > first.version

    def test_merged_view_duck_types_clustering_view(self):
        stream = toggle_stream(10, 80, seed=9)
        with ShardedEngine(PARAMS, config=FAST) as engine:
            for update in stream:
                engine.submit(update)
            engine.flush(timeout=30)
            view = engine.view()
            assert isinstance(view, ShardedView)
            reference = sequential_reference(stream)
            assert view.num_vertices == reference.graph.num_vertices
            assert view.num_edges == reference.graph.num_edges
            stats = view.stats()
            assert stats["view_version"] == view.version
            assert len(stats["shard_versions"]) == 3
            # cluster_of agrees with the membership the clustering implies
            membership = view.clustering.membership()
            for v in reference.graph.vertices():
                assert set(view.cluster_of(v)) == set(membership.get(v, []))

    def test_stats_expose_per_shard_depth_and_counters(self):
        with ShardedEngine(PARAMS, config=FAST) as engine:
            for update in toggle_stream(10, 60, seed=10):
                engine.submit(update)
            engine.flush(timeout=30)
            stats = engine.stats()
            assert stats["num_shards"] == 3
            assert len(stats["shards"]) == 3
            for index, row in enumerate(stats["shards"]):
                assert row["shard"] == index
                assert row["queue_depth"] == 0  # flushed
                assert row["running"]
                assert row["owned_vertices"] >= 0
            assert stats["applied"] == engine.applied
            assert "metrics" in stats

    def test_view_version_is_the_documented_merge_ordinal(self):
        """At quiescence: view_version == applied + cross_shard_updates
        (each cross-shard update is applied by both owner shards)."""
        with ShardedEngine(PARAMS, config=FAST) as engine:
            for update in toggle_stream(12, 150, seed=21):
                engine.submit(update)
            engine.flush(timeout=30)
            stats = engine.stats()
            assert stats["cross_shard_updates"] > 0  # the stream has some
            assert (
                stats["view_version"]
                == stats["applied"] + stats["cross_shard_updates"]
            )
            assert stats["view_version"] == sum(stats["shard_versions"])

    def test_updates_in_the_close_race_window_are_still_routed(self):
        """An update that slipped past the closed check and enqueued behind
        the stop marker is routed and applied, not silently dropped."""
        engine = ShardedEngine(PARAMS, config=FAST).start()
        engine.submit(Update.insert(1, 2))
        engine.flush(timeout=30)
        from repro.service.engine import _Stop

        engine._queue.put(_Stop())
        engine._queue.put(Update.insert(2, 3))  # the racing submit
        engine.close(checkpoint=False)
        assert engine.applied == 2
        assert engine.view().num_edges == 2

    def test_group_by_and_cluster_of_record_query_metrics(self):
        with ShardedEngine(PARAMS, config=FAST) as engine:
            engine.submit_many(
                [Update.insert(1, 2), Update.insert(2, 3), Update.insert(1, 3)]
            )
            engine.flush(timeout=30)
            engine.group_by([1, 2, 3])
            engine.cluster_of(1)
            assert engine.metrics.query.count == 2


class TestBackpressure:
    def test_submit_many_reports_the_exact_accepted_prefix(self):
        # a never-started sharded engine cannot drain its router queue
        engine = ShardedEngine(
            PARAMS, config=EngineConfig(shards=2, queue_capacity=5)
        )
        try:
            updates = [Update.insert(i, i + 1) for i in range(20)]
            accepted = engine.submit_many(updates, block=False)
            assert accepted == 5  # exactly the router queue capacity
            with pytest.raises(EngineBackpressure) as excinfo:
                engine.submit(Update.insert(100, 101), block=False)
            signal = excinfo.value
            assert signal.queue_depth >= 5
            # capacity is the whole pipeline's bound (router + shards), so
            # reported depth/capacity utilisation never exceeds 100%
            assert signal.queue_capacity == engine.total_queue_capacity == 15
            assert signal.retry_after_ms >= 1
        finally:
            engine.close(checkpoint=False)

    def test_merged_retry_after_is_the_max_over_shards(self):
        engine = ShardedEngine(
            PARAMS,
            config=EngineConfig(shards=2, queue_capacity=64, batch_size=4),
        )
        try:
            # load one shard's queue directly to create an asymmetric backlog
            busy = engine.shards[1]
            for i in range(64):
                busy.submit(Update.insert(i, i + 1), block=False)
            per_shard = [
                shard.backpressure_signal().retry_after_ms
                for shard in engine.shards
            ]
            assert per_shard[1] > per_shard[0]  # the asymmetry is real
            merged = engine.backpressure_signal()
            assert merged.retry_after_ms == max(per_shard)
            assert merged.queue_depth >= 64
        finally:
            engine.close(checkpoint=False)

    def test_submit_after_close_raises_engine_closed(self):
        engine = ShardedEngine(PARAMS, config=EngineConfig(shards=2))
        engine.close(checkpoint=False)
        with pytest.raises(EngineClosed):
            engine.submit(Update.insert(1, 2))


class TestDurability:
    def test_round_trip_restores_the_merged_clustering(self, tmp_path):
        stream = toggle_stream(10, 150, seed=11)
        config = EngineConfig(shards=3, flush_interval=0.005)
        with ShardedEngine(PARAMS, config=config, data_dir=tmp_path) as engine:
            for update in stream:
                engine.submit(update)
            engine.flush(timeout=30)
            before = engine.view().clustering
            applied = engine.applied
        # per-shard layout on disk
        for index in range(3):
            assert (tmp_path / f"shard-{index}" / "snapshot.json").exists()
        manifest = json.loads((tmp_path / MANIFEST_FILE).read_text())
        assert manifest["num_shards"] == 3
        assert manifest["applied"] == applied

        recovered = ShardedEngine(PARAMS, config=config, data_dir=tmp_path)
        with recovered:
            assert recovered.applied == applied
            after = recovered.view().clustering
            assert after.as_frozen() == before.as_frozen()
            assert after.cores == before.cores
            # the engine keeps accepting updates after recovery
            recovered.submit(Update.insert(200, 201))
            recovered.flush(timeout=30)
            assert recovered.applied == applied + 1

    def test_failed_construction_does_not_poison_an_empty_data_dir(self, tmp_path):
        # pscan cannot be made durable, so shard construction fails after
        # the manifest was written — the fresh manifest must be removed
        with pytest.raises(ValueError, match="durability"):
            ShardedEngine(
                PARAMS,
                config=EngineConfig(shards=4),
                data_dir=tmp_path,
                backend="pscan",
            )
        assert not (tmp_path / MANIFEST_FILE).exists()
        # the directory is reusable at any other shard count
        engine = ShardedEngine(
            PARAMS, config=EngineConfig(shards=2), data_dir=tmp_path
        )
        engine.close(checkpoint=False)

    def test_resharding_an_existing_data_dir_is_refused(self, tmp_path):
        with ShardedEngine(
            PARAMS, config=EngineConfig(shards=2), data_dir=tmp_path
        ) as engine:
            engine.submit(Update.insert(1, 2))
            engine.flush(timeout=30)
        with pytest.raises(ValueError, match="re-sharding"):
            ShardedEngine(PARAMS, config=EngineConfig(shards=4), data_dir=tmp_path)

    def test_recovery_reconciles_a_torn_cross_shard_replica(self, tmp_path):
        stream = toggle_stream(8, 60, seed=12)
        reference = sequential_reference(stream)
        config = EngineConfig(shards=2, flush_interval=0.005)
        with ShardedEngine(PARAMS, config=config, data_dir=tmp_path) as engine:
            for update in stream:
                engine.submit(update)
            engine.flush(timeout=30)

        # find a cross-shard pair of *fresh* vertices (outside the stream's
        # 0..7 universe) and forge a torn write: one owner logged the
        # insert, the other crashed before its WAL append
        u = next(v for v in range(50, 150) if shard_of(v, 2) == 0)
        v = next(w for w in range(150, 250) if shard_of(w, 2) == 1)
        lucky = shard_of(u, 2)
        half = ClusteringEngine(
            PARAMS,
            config=EngineConfig(flush_interval=0.005),
            data_dir=tmp_path / f"shard-{lucky}",
            label_scope=make_label_scope(lucky, 2),
        )
        with half:
            half.submit(Update.insert(u, v))
            half.flush(timeout=30)

        recovered = ShardedEngine(PARAMS, config=config, data_dir=tmp_path)
        with recovered:
            # the union of the shard graphs is the graph of record: the
            # missing replica was re-inserted into the other owner
            for index in (0, 1):
                assert recovered.shards[index].maintainer.graph.has_edge(u, v)
            # and the resurrected edge reaches the merged read surface:
            # the merged graph is the pre-crash graph plus exactly (u, v)
            merged = recovered.view()
            assert merged.num_edges == reference.graph.num_edges + 1
            assert merged.num_vertices == reference.graph.num_vertices + 2


class TestFailCleanClose:
    def test_close_attempts_every_shard_and_raises(self, monkeypatch):
        engine = ShardedEngine(PARAMS, config=EngineConfig(shards=3))
        engine.start()
        closed = []
        original = ClusteringEngine.close

        def failing_close(self, checkpoint=True):
            if self is engine.shards[1]:
                raise RuntimeError("disk on fire")
            closed.append(self)
            return original(self, checkpoint=checkpoint)

        monkeypatch.setattr(ClusteringEngine, "close", failing_close)
        with pytest.raises(EngineError, match="1 of 3 shards"):
            engine.close(checkpoint=False)
        # the two healthy shards were still closed
        assert len(closed) == 2
        monkeypatch.setattr(ClusteringEngine, "close", original)
        engine.close(checkpoint=False)  # retry succeeds
        assert not engine.shards[1].running


class TestWriterFailurePropagation:
    def test_dead_shard_writer_with_full_queue_does_not_deadlock_the_router(self):
        """Regression: the router's replication wait is sliced, so a shard
        whose writer died with a full queue surfaces as an EngineError
        instead of blocking the router (and close()) forever."""
        engine = ShardedEngine(
            PARAMS,
            config=EngineConfig(shards=2, queue_capacity=4, flush_interval=0.005),
        )
        engine.start()
        try:
            for shard in engine.shards:
                shard.maintainer.apply = None  # type: ignore[assignment]
            accepted = engine.submit_many(
                [Update.insert(i, i + 1) for i in range(4)], block=False
            )
            assert accepted >= 1
            with pytest.raises(EngineError):
                engine.flush(timeout=15)
        finally:
            engine.kill()

    def test_shard_writer_failure_surfaces_on_flush(self):
        engine = ShardedEngine(PARAMS, config=EngineConfig(shards=2))
        engine.start()
        try:
            # break one shard's maintainer so its writer thread dies
            engine.shards[0].maintainer.apply = None  # type: ignore[assignment]
            engine.shards[1].maintainer.apply = None  # type: ignore[assignment]
            for update in [Update.insert(i, i + 1) for i in range(50)]:
                engine.submit(update)
            with pytest.raises(EngineError):
                engine.flush(timeout=10)
        finally:
            engine.kill()
