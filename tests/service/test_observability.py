"""Observability tests: tracing, Prometheus exposition, debug routes.

Covers the tracer's ring/propagation semantics, the ``/metrics``
exposition writer pinned against golden text and its own strict parser
(escaping, label ordering, bucket cumulativity, ``+Inf == _count``), a
hypothesis property tying scraped bucket counts to the histogram's raw
tallies, and the end-to-end acceptance path: one client-supplied
``X-Repro-Trace`` id observable across router → shard apply → standby
replay on both 1-shard and 4-shard replicated tenants.
"""

from __future__ import annotations

import http.client
import itertools
import json
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.service import obs
from repro.service.client import ServiceClient
from repro.service.engine import EngineConfig
from repro.service.fleet import DecisionLog
from repro.service.manager import EngineManager
from repro.service.metrics import LatencyHistogram
from repro.service.obs import (
    SpanContext,
    Tracer,
    attach_context,
    enqueued_at,
    new_trace_id,
    parse_prometheus_text,
    render_metrics,
    stamp_enqueue,
    tag_update,
    update_context,
)
from repro.service.server import BackgroundServer

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
FAST = EngineConfig(batch_size=8, flush_interval=0.01)


# ----------------------------------------------------------------------
# tracer semantics
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_records_on_exit_with_duration(self):
        tracer = Tracer(capacity=8)
        with tracer.span("work", answer=42) as context:
            assert context.trace_id and context.span_id
        (record,) = tracer.spans()
        assert record["name"] == "work"
        assert record["trace_id"] == context.trace_id
        assert record["attrs"] == {"answer": 42}
        assert record["duration_s"] >= 0.0

    def test_ring_is_bounded_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for index in range(6):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 4
        assert tracer.dropped == 2
        assert [s["name"] for s in tracer.spans()] == ["s2", "s3", "s4", "s5"]

    def test_child_joins_ambient_trace_with_parent_link(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.trace_id == parent.trace_id
        child_record, = [s for s in tracer.spans() if s["name"] == "child"]
        assert child_record["parent_id"] == parent.span_id

    def test_foreign_trace_id_never_fabricates_a_parent(self):
        tracer = Tracer()
        with tracer.span("ambient"):
            with tracer.span("foreign", trace_id="f00dfeedf00dfeed"):
                pass
        foreign, = [s for s in tracer.spans() if s["name"] == "foreign"]
        assert foreign["trace_id"] == "f00dfeedf00dfeed"
        assert foreign["parent_id"] is None

    def test_exception_path_closes_the_span_and_tags_the_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = tracer.spans()
        assert record["attrs"]["error"] == "RuntimeError"

    def test_jsonl_mirror_appends_one_line_per_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(jsonl_path=path)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        lines = path.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_clear_resets_ring_and_drop_counter(self):
        tracer = Tracer(capacity=1)
        for _ in range(3):
            with tracer.span("x"):
                pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_spans_filter_by_trace_and_limit(self):
        tracer = Tracer()
        with tracer.span("mine", trace_id="aaaa000011112222"):
            pass
        with tracer.span("other"):
            pass
        mine = tracer.spans(trace_id="aaaa000011112222")
        assert [s["name"] for s in mine] == ["mine"]
        assert len(tracer.spans(limit=1)) == 1


class TestUpdateTagging:
    def test_tag_update_requires_a_sampled_ambient_span(self):
        tracer = Tracer()
        update = Update.insert(1, 2)
        tag_update(update)  # no ambient span: no tag
        assert update_context(update) is None
        with tracer.span("unsampled", sampled=False):
            tag_update(update)
        assert update_context(update) is None
        with tracer.span("sampled") as context:
            tag_update(update)
        assert update_context(update) == context

    def test_existing_tag_and_enqueue_stamp_win(self):
        update = Update.insert(1, 2)
        pinned = SpanContext("1111222233334444", "abcd0123")
        attach_context(update, pinned)
        tracer = Tracer()
        with tracer.span("later"):
            tag_update(update)
        assert update_context(update) == pinned
        stamp_enqueue(update)
        first = enqueued_at(update)
        stamp_enqueue(update)
        assert enqueued_at(update) == first


# ----------------------------------------------------------------------
# exposition writer: golden text + format invariants
# ----------------------------------------------------------------------
class _EmptyManager:
    def items(self):
        return []


GOLDEN_EMPTY = """\
# HELP repro_build_info Always 1; the version rides in the label.
# TYPE repro_build_info gauge
repro_build_info{version="test"} 1
# HELP repro_tenants Hosted (ready) tenants.
# TYPE repro_tenants gauge
repro_tenants 0
# HELP repro_trace_spans Completed spans retained in the trace ring.
# TYPE repro_trace_spans gauge
repro_trace_spans 0
# HELP repro_trace_spans_dropped_total Spans evicted from the trace ring since process start.
# TYPE repro_trace_spans_dropped_total counter
repro_trace_spans_dropped_total 0
"""


class TestExpositionFormat:
    def test_golden_empty_manager(self):
        obs.get_tracer().clear()
        assert render_metrics(_EmptyManager(), version="test") == GOLDEN_EMPTY

    def test_label_escaping_round_trips(self):
        hostile = 'quote:" backslash:\\ newline:\n done'
        exposition = obs.Exposition()
        exposition.add("repro_build_info", {"version": hostile}, 1)
        _types, samples = parse_prometheus_text(exposition.render())
        (sample,) = samples
        assert sample.labels["version"] == hostile

    def test_label_order_is_insertion_order_and_deterministic(self):
        exposition = obs.Exposition()
        exposition.add(
            "repro_queue_depth", {"tenant": "t", "shard": "0", "role": "primary"}, 3
        )
        text = exposition.render()
        assert 'repro_queue_depth{tenant="t",shard="0",role="primary"} 3' in text
        assert text == exposition.render()  # rendering is pure

    def test_histogram_buckets_are_cumulative_and_inf_equals_count(self):
        histogram = LatencyHistogram()
        for seconds in (1e-6, 3e-6, 0.5, 1e9):  # first, middle, overflow
            histogram.observe(seconds)
        exposition = obs.Exposition()
        exposition.histogram("repro_query_latency_seconds", {"tenant": "t"}, histogram)
        types, samples = parse_prometheus_text(exposition.render())
        assert types["repro_query_latency_seconds"] == "histogram"
        buckets = [s for s in samples if s.name.endswith("_bucket")]
        values = [s.value for s in buckets]
        assert values == sorted(values)  # cumulative: non-decreasing
        assert buckets[-1].labels["le"] == "+Inf"
        (count,) = [s for s in samples if s.name.endswith("_count")]
        assert buckets[-1].value == count.value == 4
        (total,) = [s for s in samples if s.name.endswith("_sum")]
        assert total.value == pytest.approx(histogram.total)

    def test_format_value_is_terse_and_parseable(self):
        assert obs.format_value(1.0) == "1"
        assert obs.format_value(float("inf")) == "+Inf"
        assert obs.format_value(2e-6) == "2e-06"
        assert obs._parse_value("+Inf") == float("inf")

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("repro_tenants oops\n")
        with pytest.raises(ValueError):
            parse_prometheus_text('repro_tenants{tenant=t} 1\n')
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE repro_tenants flavour\n")

    def test_unknown_family_is_a_programming_error(self):
        with pytest.raises(ValueError):
            obs.Exposition().add("not_a_family", {}, 1)


class TestExpositionProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
            max_size=50,
        )
    )
    def test_scraped_buckets_equal_prefix_sums_of_raw_tallies(self, observations):
        histogram = LatencyHistogram()
        for seconds in observations:
            histogram.observe(seconds)
        exposition = obs.Exposition()
        exposition.histogram(
            "repro_ingest_latency_seconds", {"tenant": "t"}, histogram
        )
        _types, samples = parse_prometheus_text(exposition.render())
        bounds, counts, count, total = histogram.bucket_snapshot()
        buckets = [s for s in samples if s.name.endswith("_bucket")]
        finite = [s for s in buckets if s.labels["le"] != "+Inf"]
        assert len(finite) == len(bounds)
        prefix_sums = list(itertools.accumulate(counts[: len(bounds)]))
        assert [int(s.value) for s in finite] == prefix_sums
        (inf,) = [s for s in buckets if s.labels["le"] == "+Inf"]
        assert inf.value == count == len(observations)
        (scraped_sum,) = [s for s in samples if s.name.endswith("_sum")]
        assert scraped_sum.value == pytest.approx(total)


class TestHistogramSummary:
    def test_summary_count_mean_max_come_from_one_snapshot(self):
        histogram = LatencyHistogram()
        stop = threading.Event()

        def writer():
            value = 0
            while not stop.is_set():
                histogram.observe(0.001 * ((value % 10) + 1))
                value += 1

        thread = threading.Thread(target=writer, name="summary-writer")
        thread.start()
        try:
            for _ in range(300):
                digest = histogram.summary()
                count, mean = digest["count"], digest["mean_s"]
                if count:
                    # a torn (count, total) pair would put the mean outside
                    # the observed value range
                    assert 0.001 <= mean <= 0.010 + 1e-12
                    assert digest["max_s"] <= 0.010 + 1e-12
        finally:
            stop.set()
            thread.join()


# ----------------------------------------------------------------------
# end-to-end: X-Repro-Trace across router → shard apply → standby replay
# ----------------------------------------------------------------------
def _replicated_stack(tmp_path, shards):
    """(primary manager+server+client, replica manager+server+client)."""
    primary = EngineManager(
        PARAMS,
        default_engine_config=FAST,
        data_root=tmp_path / "primary",
        create_default=False,
    )
    primary.create("t", shards=shards)
    replica = EngineManager(
        PARAMS,
        default_engine_config=FAST,
        data_root=tmp_path / "replica",
        create_default=False,
    )
    return primary, replica


def _wait_for_span(client, trace_id, name, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        spans = client.debug_traces(trace_id=trace_id)["spans"]
        if any(span["name"] == name for span in spans):
            return spans
        time.sleep(0.05)
    raise AssertionError(
        f"span {name!r} for trace {trace_id} never appeared; have "
        f"{[s['name'] for s in client.debug_traces(trace_id=trace_id)['spans']]}"
    )


@pytest.mark.parametrize(
    "shards, apply_span, expect_router",
    [(1, "engine.apply", False), (4, "shard.apply", True)],
)
def test_trace_id_spans_router_shard_and_standby(
    tmp_path, shards, apply_span, expect_router
):
    obs.get_tracer().clear()
    primary, replica = _replicated_stack(tmp_path, shards)
    trace_id = new_trace_id()
    updates = [Update.insert(i, i + 1) for i in range(12)]
    with primary, replica:
        with BackgroundServer(primary) as primary_server:
            client = ServiceClient("127.0.0.1", primary_server.port, tenant="t")
            with BackgroundServer(replica) as replica_server:
                admin = ServiceClient("127.0.0.1", replica_server.port)
                admin.create_tenant(
                    "t", replica_of=f"127.0.0.1:{primary_server.port}"
                )
                accepted = client.submit_updates(updates, trace_id=trace_id)
                assert accepted == len(updates)
                primary.get("t").flush()
                spans = _wait_for_span(client, trace_id, "standby.replay")
                names = {span["name"] for span in spans}
                assert "http.request" in names
                assert apply_span in names
                assert ("router.route" in names) is expect_router
                assert {span["trace_id"] for span in spans} == {trace_id}
                # the apply spans carry shard + WAL position attributes
                applies = [s for s in spans if s["name"] == apply_span]
                assert applies and all(
                    "position" in s["attrs"] for s in applies
                )
                if expect_router:
                    touched = {s["attrs"]["shard"] for s in applies}
                    assert len(touched) > 1  # the batch crossed shards
                admin.close()
            client.close()


def test_untraced_requests_do_not_record_apply_spans(tmp_path):
    obs.get_tracer().clear()
    manager = EngineManager(
        PARAMS, default_engine_config=FAST, data_root=tmp_path, create_default=False
    )
    manager.create("t")
    with manager, BackgroundServer(manager) as server:
        client = ServiceClient("127.0.0.1", server.port, tenant="t")
        client.submit_updates([Update.insert(1, 2)])
        manager.get("t").flush()
        time.sleep(0.1)
        names = {
            span["name"] for span in client.debug_traces(limit=1000)["spans"]
        }
        assert "http.request" in names  # every request gets one span
        assert "engine.apply" not in names  # per-update spans are opt-in
        client.close()


# ----------------------------------------------------------------------
# HTTP surface: /metrics, header echo, debug routes
# ----------------------------------------------------------------------
@pytest.fixture
def served(tmp_path):
    manager = EngineManager(
        PARAMS,
        default_engine_config=FAST,
        data_root=tmp_path,
        create_default=False,
    )
    manager.create("t", shards=4)
    with manager, BackgroundServer(manager) as server:
        client = ServiceClient("127.0.0.1", server.port, tenant="t")
        yield manager, server, client
        client.close()


def _raw(server, method, path, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
    connection.request(method, path, headers=headers or {})
    response = connection.getresponse()
    raw = response.read()
    result = response.status, dict(response.getheaders()), raw
    connection.close()
    return result


class TestHttpSurface:
    def test_metrics_route_serves_valid_exposition(self, served):
        _manager, server, client = served
        client.submit_updates([Update.insert(i, i + 1) for i in range(8)])
        client.group_by([1, 2])
        _manager.get("t").flush()
        status, headers, raw = _raw(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"
        types, samples = parse_prometheus_text(raw.decode("utf-8"))
        assert types["repro_ingest_latency_seconds"] == "histogram"
        counts = {
            s.labels["shard"]: s.value
            for s in samples
            if s.name == "repro_ingest_latency_seconds_count"
            and s.labels["tenant"] == "t"
        }
        assert set(counts) == {"0", "1", "2", "3", "router"}
        assert sum(counts.values()) > 0
        stage_rows = [
            s for s in samples if s.name == "repro_ingest_stage_seconds_count"
        ]
        assert {s.labels["stage"] for s in stage_rows} == {
            "queue_wait", "wal_append", "backend_apply", "view_publish",
        }
        # the client helper scrapes the same document (re-parsed, since a
        # second scrape may observe newer samples)
        parse_prometheus_text(client.metrics_text())

    def test_trace_header_is_echoed_and_invalid_values_are_replaced(self, served):
        _manager, server, _client = served
        status, headers, _ = _raw(
            server, "GET", "/v1/healthz", {"X-Repro-Trace": "cafe0123cafe0123"}
        )
        assert status == 200
        assert headers["X-Repro-Trace"] == "cafe0123cafe0123"
        _status, headers, _ = _raw(
            server, "GET", "/v1/healthz", {"X-Repro-Trace": 'bad "value"\x01' + "x" * 80}
        )
        minted = headers["X-Repro-Trace"]
        assert minted and "bad" not in minted and len(minted) == 16

    def test_debug_traces_filters_and_validates(self, served):
        _manager, server, client = served
        trace_id = "feedface00000001"
        client.submit_updates([Update.insert(1, 2)], trace_id=trace_id)
        document = client.debug_traces(trace_id=trace_id)
        assert document["trace_id"] == trace_id
        assert all(s["trace_id"] == trace_id for s in document["spans"])
        assert {"count", "capacity", "dropped"} <= set(document)
        status, _headers, _ = _raw(server, "GET", "/v1/debug/traces?limit=oops")
        assert status == 400
        status, _headers, _ = _raw(server, "GET", "/v1/debug/traces?bogus=1")
        assert status == 400

    def test_debug_decisions_surfaces_registered_logs(self, served):
        _manager, _server, client = served
        log = DecisionLog()
        log.record("unit_test_probe", tenant="t")
        document = client.debug_decisions(limit=10)
        events = [e["event"] for e in document["decisions"]]
        assert "unit_test_probe" in events
        assert document["count"] == len(document["decisions"])

    def test_debug_profile_returns_collapsed_stacks(self, served):
        _manager, server, client = served
        document = client.debug_profile(seconds=0.05, interval=0.01)
        assert document["samples"] >= 1
        assert isinstance(document["stacks"], list)
        # the event loop thread shows up: the profiler saw other threads
        assert any(";" in stack for stack in document["stacks"])
        status, _headers, _ = _raw(
            server, "GET", "/v1/debug/profile?seconds=nan"
        )
        assert status == 400


class TestTraceCli:
    def test_repro_trace_lists_spans_as_json(self, served, capsys):
        from repro.cli import main

        _manager, server, client = served
        trace_id = "beadfeed00000002"
        client.submit_updates([Update.insert(7, 8)], trace_id=trace_id)
        _wait_for_span(client, trace_id, "shard.apply")
        exit_code = main(
            [
                "trace",
                "--port", str(server.port),
                "--trace-id", trace_id,
                "--json",
            ]
        )
        assert exit_code == 0
        spans = json.loads(capsys.readouterr().out)
        assert spans and all(span["trace_id"] == trace_id for span in spans)
