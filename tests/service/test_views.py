"""Unit tests for immutable clustering views."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.service.views import ClusteringView

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)

TWO_TRIANGLES = [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)]


def _built_maintainer(edges=TWO_TRIANGLES) -> DynStrClu:
    algo = DynStrClu(PARAMS)
    for u, v in edges:
        algo.insert_edge(u, v)
    return algo


class TestCapture:
    def test_version_and_sizes(self):
        algo = _built_maintainer()
        view = ClusteringView.capture(algo, version=6)
        assert view.version == 6
        assert view.num_vertices == 6
        assert view.num_edges == 6
        assert view.clustering.num_clusters == 2

    def test_empty_view(self):
        view = ClusteringView.empty()
        assert view.version == 0
        assert view.cluster_of(1) == ()
        assert view.group_by([1, 2]).num_groups == 0
        assert view.stats()["clusters"] == 0

    def test_view_is_immutable(self):
        view = ClusteringView.capture(_built_maintainer(), version=6)
        with pytest.raises(dataclasses.FrozenInstanceError):
            view.version = 7

    def test_view_survives_further_updates(self):
        """The captured view must not alias the live maintainer's state."""
        algo = _built_maintainer()
        view = ClusteringView.capture(algo, version=6)
        before = view.group_by([1, 2, 3, 4, 5, 6]).as_sets()
        # merge the two triangles through a new hub
        algo.insert_edge(3, 4)
        algo.insert_edge(3, 5)
        after_live = algo.group_by([1, 2, 3, 4, 5, 6]).as_sets()
        assert view.group_by([1, 2, 3, 4, 5, 6]).as_sets() == before
        assert after_live != before


class TestQueries:
    def test_group_by_matches_live_maintainer(self):
        algo = _built_maintainer()
        view = ClusteringView.capture(algo, version=6)
        query = [1, 2, 4, 6]
        live = {frozenset(g) for g in algo.group_by(query).as_sets()}
        snap = {frozenset(g) for g in view.group_by(query).as_sets()}
        assert live == snap == {frozenset({1, 2}), frozenset({4, 6})}

    def test_group_by_ignores_unknown_and_noise(self):
        algo = _built_maintainer()
        algo.insert_edge(7, 8)  # an edge far below the core threshold
        view = ClusteringView.capture(algo, version=7)
        result = view.group_by([7, 8, 99])
        assert result.num_groups == 0

    def test_cluster_of_core_and_hub(self):
        edges = TWO_TRIANGLES + [(3, 7), (4, 7)]
        algo = _built_maintainer(edges)
        view = ClusteringView.capture(algo, version=len(edges))
        # 1 is a core of the first triangle: exactly one cluster
        assert len(view.cluster_of(1)) == 1
        # if 7 is similar to cores of both triangles it is a hub (two clusters)
        hubs = view.clustering.hubs
        if 7 in hubs:
            assert len(view.cluster_of(7)) == 2

    def test_stats_document_is_json_friendly(self):
        import json

        view = ClusteringView.capture(_built_maintainer(), version=6)
        document = view.stats()
        assert json.loads(json.dumps(document)) == document
        assert document["view_version"] == 6
        assert document["clusters"] == 2
