"""Time-travel (``as_of``) reads: store semantics, retention and the HTTP surface.

Covers the :class:`~repro.service.timetravel.HistoricalViewStore` contract
(anchor+replay equality with a fresh sequential run, the materialised-view
LRU with its hit/miss/eviction counters, cached-replayer reuse), the
ack- and pin-aware WAL retention floor, the replayable-horizon telemetry,
and the v1 routes: ``?as_of`` on cluster/group-by/stats, the structured
410 ``as_of_unavailable`` for pruned history, and the strict rejection of
unknown query parameters.
"""

from __future__ import annotations

import pytest

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.core.result import clusterings_equal
from repro.graph.generators import planted_partition_graph
from repro.service.client import ServiceClient, ServiceError
from repro.service.engine import ClusteringEngine, EngineConfig
from repro.service.manager import EngineManager
from repro.service.server import BackgroundServer
from repro.service.sharding import ShardedEngine
from repro.service.timetravel import AsOfUnavailableError, HistoricalViewStore
from repro.workloads.updates import generate_update_sequence

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)


def _stream(num_updates=120, seed=5):
    edges = planted_partition_graph(2, 8, 0.8, 0.1, seed=3)
    workload = generate_update_sequence(16, edges, num_updates, eta=0.3, seed=seed)
    return list(workload.all_updates())


def _reference(stream, position):
    algo = DynStrClu(PARAMS)
    for update in stream[:position]:
        algo.apply(update)
    return algo.clustering()


def _drive(engine, stream):
    for update in stream:
        engine.submit(update)
    assert engine.flush(timeout=30)


@pytest.fixture
def durable_engine(tmp_path):
    config = EngineConfig(
        batch_size=4,
        flush_interval=0.01,
        checkpoint_every=25,
        wal_retain_segments=8,
    )
    with ClusteringEngine(PARAMS, config=config, data_dir=tmp_path) as engine:
        engine.start()
        yield engine


class TestHistoricalViewStore:
    def test_as_of_equals_truncated_sequential_replay(self, durable_engine):
        stream = _stream()
        _drive(durable_engine, stream)
        applied = durable_engine.applied
        assert applied == len(stream)
        store = HistoricalViewStore(durable_engine, capacity=8)
        for position in (applied, applied - 1, applied // 2, applied // 3):
            view = store.view_at((position,))
            assert view.version == position
            assert clusterings_equal(view.clustering, _reference(stream, position))

    def test_second_query_is_an_lru_hit_without_replaying(self, durable_engine):
        stream = _stream(60)
        _drive(durable_engine, stream)
        position = durable_engine.applied // 2
        store = HistoricalViewStore(durable_engine, capacity=4)
        first = store.view_at((position,))
        replays = store.replay_latency.summary()["count"]
        again = store.view_at((position,))
        assert again is first  # the very same materialised view object
        assert store.replay_latency.summary()["count"] == replays
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert durable_engine.metrics.get("timetravel_hits") == 1

    def test_lru_evicts_oldest_beyond_capacity(self, durable_engine):
        stream = _stream(80)
        _drive(durable_engine, stream)
        applied = durable_engine.applied
        store = HistoricalViewStore(durable_engine, capacity=2)
        positions = [applied - 3, applied - 2, applied - 1]
        for position in positions:
            store.view_at((position,))
        stats = store.stats()
        assert stats["cached_views"] == 2
        assert stats["evictions"] == 1
        # the evicted (oldest) position replays again: a miss, not a hit
        store.view_at((positions[0],))
        assert store.stats()["misses"] == 4

    def test_cached_replayer_continues_forward(self, durable_engine):
        stream = _stream(100)
        _drive(durable_engine, stream)
        applied = durable_engine.applied
        store = HistoricalViewStore(durable_engine, capacity=8)
        early = store.view_at((applied // 4,))
        later = store.view_at((applied // 2,))  # continues the same replayer
        assert clusterings_equal(early.clustering, _reference(stream, applied // 4))
        assert clusterings_equal(later.clustering, _reference(stream, applied // 2))
        assert store.stats()["misses"] == 2

    def test_beyond_applied_is_a_value_error(self, durable_engine):
        _drive(durable_engine, _stream(40))
        store = HistoricalViewStore(durable_engine, capacity=2)
        with pytest.raises(ValueError, match="beyond the applied prefix"):
            store.view_at((durable_engine.applied + 1,))

    def test_wrong_arity_is_a_value_error(self, durable_engine):
        _drive(durable_engine, _stream(40))
        store = HistoricalViewStore(durable_engine, capacity=2)
        with pytest.raises(ValueError, match="exactly 1 per-shard"):
            store.view_at((1, 2))

    def test_non_durable_tenant_is_a_value_error(self):
        with ClusteringEngine(PARAMS, config=EngineConfig(batch_size=4)) as engine:
            engine.start()
            store = HistoricalViewStore(engine, capacity=2)
            with pytest.raises(ValueError, match="durable"):
                store.view_at((0,))

    def test_pruned_history_raises_as_of_unavailable(self, tmp_path):
        config = EngineConfig(
            batch_size=4,
            flush_interval=0.01,
            checkpoint_every=10,
            wal_retain_segments=1,
        )
        with ClusteringEngine(PARAMS, config=config, data_dir=tmp_path) as engine:
            engine.start()
            _drive(engine, _stream(150))
            horizon = engine.wal_horizon()
            assert horizon["oldest_replayable"] > 0  # history was pruned
            store = HistoricalViewStore(engine, capacity=2)
            with pytest.raises(AsOfUnavailableError) as excinfo:
                store.view_at((1,))
            assert excinfo.value.requested == 1
            assert excinfo.value.oldest == horizon["oldest_replayable"]
            # the oldest still-replayable position works
            view = store.view_at((horizon["oldest_replayable"],))
            assert view.version == horizon["oldest_replayable"]


class TestShardedTimeTravel:
    def test_sharded_as_of_matches_quiescent_view(self, tmp_path):
        stream = _stream(100)
        config = EngineConfig(
            batch_size=4,
            flush_interval=0.01,
            checkpoint_every=20,
            wal_retain_segments=8,
            shards=4,
        )
        with ShardedEngine(PARAMS, config=config, data_dir=tmp_path) as engine:
            engine.start()
            half = len(stream) // 2
            _drive(engine, stream[:half])
            mid_positions = tuple(shard.applied for shard in engine.shards)
            _drive(engine, stream[half:])
            store = HistoricalViewStore(engine, capacity=4)
            view = store.view_at(mid_positions)
            assert clusterings_equal(view.clustering, _reference(stream, half))
            with pytest.raises(ValueError, match="exactly 4 per-shard"):
                store.view_at((5,))


class TestRetentionFloor:
    def test_pin_holds_segments_and_unpin_releases(self, tmp_path):
        config = EngineConfig(
            batch_size=4,
            flush_interval=0.01,
            checkpoint_every=10,
            wal_retain_segments=1,
        )
        stream = _stream(200)
        with ClusteringEngine(PARAMS, config=config, data_dir=tmp_path) as engine:
            engine.start()
            _drive(engine, stream[:40])
            pin_position = engine.applied
            token = engine.pin_wal(pin_position)
            assert engine.retention_floor() == pin_position
            _drive(engine, stream[40:])
            # everything from the pin forward must still be replayable
            assert engine.wal_horizon()["oldest_replayable"] <= pin_position
            store = HistoricalViewStore(engine, capacity=2)
            view = store.view_at((pin_position,))
            assert clusterings_equal(view.clustering, _reference(stream, pin_position))
            engine.unpin_wal(token)
            assert engine.retention_floor() is None

    def test_standby_ack_floors_pruning(self, tmp_path):
        config = EngineConfig(
            batch_size=4,
            flush_interval=0.01,
            checkpoint_every=10,
            wal_retain_segments=1,
        )
        with ClusteringEngine(PARAMS, config=config, data_dir=tmp_path) as engine:
            engine.start()
            stream = _stream(200)
            _drive(engine, stream[:30])
            acked = engine.applied
            engine.note_standby_ack(acked)
            _drive(engine, stream[30:])
            # the slowest standby's position is still servable from the WAL
            assert engine.wal_horizon()["oldest_retained_base"] <= acked
            # a later ack advances the floor (last-wins, single slot)
            engine.note_standby_ack(engine.applied)
            assert engine.retention_floor() == engine.applied

    def test_floor_is_min_of_pins_and_ack(self, tmp_path):
        with ClusteringEngine(
            PARAMS,
            config=EngineConfig(wal_retain_segments=1),
            data_dir=tmp_path,
        ) as engine:
            assert engine.retention_floor() is None
            token_a = engine.pin_wal(50)
            token_b = engine.pin_wal(30)
            engine.note_standby_ack(40)
            assert engine.retention_floor() == 30
            engine.unpin_wal(token_b)
            assert engine.retention_floor() == 40
            engine.note_standby_ack(90)
            assert engine.retention_floor() == 50
            engine.unpin_wal(token_a)
            assert engine.retention_floor() == 90

    def test_manager_record_ack_reaches_engine_floor(self, tmp_path):
        manager = EngineManager(
            PARAMS,
            default_engine_config=EngineConfig(
                batch_size=4, flush_interval=0.01, wal_retain_segments=2
            ),
            data_root=tmp_path,
        )
        with manager:
            engine = manager.get("default")
            manager.record_ack("default", 0, 17)
            assert engine.retention_floor() == 17
            # out-of-range shard index is telemetry-only, never a crash
            manager.record_ack("default", 5, 3)
            assert engine.retention_floor() == 17


class TestTimeTravelHTTP:
    @pytest.fixture
    def service(self, tmp_path):
        manager = EngineManager(
            PARAMS,
            default_engine_config=EngineConfig(
                batch_size=4,
                flush_interval=0.01,
                checkpoint_every=25,
                wal_retain_segments=8,
            ),
            data_root=tmp_path,
        )
        with manager:
            with BackgroundServer(manager) as background:
                client = ServiceClient("127.0.0.1", background.port)
                yield manager, background, client
                client.close()

    def test_as_of_reads_over_http(self, service):
        manager, _background, client = service
        stream = _stream(80)
        engine = manager.get("default")
        _drive(engine, stream)
        applied = engine.applied
        position = applied // 2
        probe = list(range(16))
        document = client.group_by_raw(probe, as_of=position)
        assert document["view_version"] == position
        assert document["as_of"] == [position]
        # at the full applied position the historical view IS the live one
        def _partition(doc):
            return frozenset(
                frozenset(map(repr, members))
                for members in doc["groups"].values()
                if members
            )

        at_applied = client.group_by_raw(probe, as_of=applied)
        live = client.group_by_raw(probe)
        assert at_applied["view_version"] == applied
        assert _partition(at_applied) == _partition(live)
        # the historical cluster route agrees with the historical group-by
        clusters = client.cluster_of(1, as_of=position)
        assert isinstance(clusters, list)
        # as_of=latest serves the live view and echoes it
        latest = client.group_by_raw(probe, as_of="latest")
        assert latest["view_version"] == applied
        assert latest["as_of"] == "latest"
        assert _partition(latest) == _partition(live)

    def test_stats_exposes_horizon_cache_and_replay_histogram(self, service):
        manager, _background, client = service
        engine = manager.get("default")
        _drive(engine, _stream(60))
        position = engine.applied // 2
        client.cluster_of(1, as_of=position)
        client.cluster_of(1, as_of=position)
        stats = client.stats()
        assert stats["wal"]["durable"] is True
        assert stats["wal"]["segments"] >= 1
        assert stats["wal"]["oldest_replayable"] == 0
        travel = stats["timetravel"]
        assert travel["hits"] == 1
        assert travel["misses"] == 1
        assert travel["replay"]["count"] == 1
        assert travel["capacity"] == manager.history_cache_size
        # historical stats: the view-statistics portion at that position
        historical = client.stats(as_of=position)
        assert historical["as_of"] == [position]
        assert historical["view_version"] == position

    def test_healthz_exposes_replayable_horizon(self, service):
        manager, _background, client = service
        _drive(manager.get("default"), _stream(40))
        document = client.healthz()
        assert document["wal"]["segments"] >= 1
        assert "default" in document["wal"]["horizon"]
        horizon = document["wal"]["horizon"]["default"]
        assert horizon["oldest_replayable"] == 0

    def test_pruned_history_is_a_structured_410(self, tmp_path):
        manager = EngineManager(
            PARAMS,
            default_engine_config=EngineConfig(
                batch_size=4,
                flush_interval=0.01,
                checkpoint_every=10,
                wal_retain_segments=1,
            ),
            data_root=tmp_path,
        )
        with manager:
            engine = manager.get("default")
            _drive(engine, _stream(150))
            oldest = engine.wal_horizon()["oldest_replayable"]
            assert oldest > 0
            with BackgroundServer(manager) as background:
                client = ServiceClient("127.0.0.1", background.port)
                try:
                    with pytest.raises(ServiceError) as excinfo:
                        client.cluster_of(1, as_of=1)
                    error = excinfo.value
                    assert error.status == 410
                    assert error.code == "as_of_unavailable"
                    assert error.document["oldest_position"] == oldest
                    assert error.document["requested_position"] == 1
                    assert not error.retryable
                finally:
                    client.close()

    def test_unknown_query_params_are_rejected(self, service):
        _manager, background, client = service
        from tests.service.test_v1_api import _raw

        for path in (
            "/v1/tenants/default/cluster/1?asof=5",
            "/v1/tenants/default/cluster/1?as_of=1&frobnicate=yes",
            "/v1/tenants/default/stats?shard=0",
            "/v1/tenants/default/wal?from=0&bogus=1",
            "/v1/tenants/default/snapshot?max=3",
        ):
            status, _headers, document = _raw(background, "GET", path)
            assert status == 400, path
            assert document["error"]["code"] == "bad_request", path
            assert "query parameter" in document["error"]["message"], path
        # known parameters still pass validation on every route
        status, _headers, document = _raw(
            background, "GET", "/v1/tenants/default/cluster/1?as_of=latest"
        )
        assert status == 200
        assert document["as_of"] == "latest"

    def test_malformed_and_out_of_range_as_of_are_400(self, service):
        manager, background, client = service
        _drive(manager.get("default"), _stream(30))
        from tests.service.test_v1_api import _raw

        status, _headers, document = _raw(
            background, "GET", "/v1/tenants/default/cluster/1?as_of=bananas"
        )
        assert status == 400
        assert document["error"]["code"] == "bad_request"
        with pytest.raises(ServiceError) as excinfo:
            client.cluster_of(1, as_of=10**9)
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.cluster_of(1, as_of=[1, 2])  # wrong arity for unsharded
        assert excinfo.value.status == 400
