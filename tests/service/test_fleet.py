"""Unit and integration tests of the autonomous replica-fleet subsystem.

Covers the jittered shipper backoff, the watchdog decision loop (quorum,
cool-down, winner selection, orphan re-parenting — scripted through the
injectable hooks, no sockets), the in-process watchdog end-to-end against
a real dead primary, the topology/reparent HTTP routes, chained standbys
with per-hop ack forwarding, the replica-set routing client, and the
wall-clock staleness (``last_applied_at``) surfaces.
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.service import (
    BackgroundServer,
    DecisionLog,
    EngineConfig,
    EngineManager,
    FleetError,
    FleetWatchdog,
    NotAStandbyError,
    ServiceClient,
    ServiceError,
    StandbyEngine,
    WatchdogConfig,
)
from repro.service.fleet import _Standby
from repro.service.replication import backoff_delay

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
FAST = EngineConfig(batch_size=8, flush_interval=0.005)

TRIANGLE = [Update.insert(1, 2), Update.insert(2, 3), Update.insert(1, 3)]


def chain(start: int, count: int):
    return [Update.insert(start + i, start + i + 1) for i in range(count)]


def wait_until(predicate, timeout: float = 15.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def groups_of(engine, universe) -> set:
    return {frozenset(group) for group in engine.group_by(universe).as_sets()}


# ----------------------------------------------------------------------
# satellite: jittered exponential backoff in the shipper retry loop
# ----------------------------------------------------------------------
class TestBackoffDelay:
    def test_zero_failures_is_the_base_interval(self):
        rng = random.Random(0)
        assert backoff_delay(0, 0.05, 2.0, rng) == 0.05

    def test_delay_is_jittered_within_the_doubling_ceiling(self):
        rng = random.Random(1)
        for failures in (1, 2, 3, 4):
            ceiling = min(2.0, 0.05 * (2**failures))
            for _ in range(50):
                delay = backoff_delay(failures, 0.05, 2.0, rng)
                assert 0.05 <= delay <= ceiling

    def test_cap_bounds_arbitrarily_many_failures(self):
        rng = random.Random(2)
        for _ in range(50):
            assert backoff_delay(500, 0.05, 2.0, rng) <= 2.0
        # astronomically many failures must not overflow the shift
        assert backoff_delay(10**9, 0.05, 2.0, rng) <= 2.0

    def test_delays_actually_vary(self):
        rng = random.Random(3)
        delays = {backoff_delay(4, 0.05, 2.0, rng) for _ in range(20)}
        assert len(delays) > 1

    def test_cap_below_base_degenerates_to_base(self):
        rng = random.Random(4)
        assert backoff_delay(7, 0.5, 0.1, rng) == 0.5

    def test_shipper_resets_failures_on_successful_fetch(self, tmp_path):
        manager = EngineManager(
            PARAMS,
            default_engine_config=FAST,
            data_root=tmp_path / "primary",
            create_default=False,
        )
        manager.create("t")
        engine = manager.get("t")
        for update in TRIANGLE:
            engine.submit(update)
        engine.flush()
        with BackgroundServer(manager) as server:
            standby = StandbyEngine(
                f"127.0.0.1:{server.port}",
                "t",
                data_dir=tmp_path / "standby",
                config=FAST,
                poll_interval=0.01,
            ).start()
            try:
                assert wait_until(lambda: standby.applied >= 3)
                for shipper in standby._shippers:
                    shipper.consecutive_failures = 5  # simulate a bad spell
                engine.submit(Update.insert(3, 4))
                engine.flush()
                assert wait_until(lambda: standby.applied >= 4)
                assert wait_until(
                    lambda: all(
                        shipper.consecutive_failures == 0
                        for shipper in standby._shippers
                    )
                )
            finally:
                standby.close()
        manager.close()


# ----------------------------------------------------------------------
# decision log
# ----------------------------------------------------------------------
class TestDecisionLog:
    def test_records_are_kept_and_filterable(self):
        log = DecisionLog()
        log.record("probe_failed", tenant="t", failures=1)
        log.record("promotion_succeeded", tenant="t")
        log.record("probe_failed", tenant="u", failures=2)
        assert len(log) == 3
        failed = log.events("probe_failed")
        assert [entry["tenant"] for entry in failed] == ["t", "u"]
        assert all("ts" in entry for entry in log.events())

    def test_ring_is_bounded(self):
        log = DecisionLog(limit=4)
        for i in range(10):
            log.record("tick", n=i)
        events = log.events()
        assert len(events) == 4
        assert [entry["n"] for entry in events] == [6, 7, 8, 9]

    def test_jsonl_file_mirrors_every_record(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        log = DecisionLog(path=path)
        log.record("a", x=1)
        log.record("b", y="z")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["event"] for line in lines] == ["a", "b"]
        assert lines[0]["x"] == 1 and lines[1]["y"] == "z"

    def test_echo_receives_serialised_lines(self):
        seen = []
        log = DecisionLog(echo=seen.append)
        log.record("hello", n=7)
        assert len(seen) == 1 and json.loads(seen[0])["n"] == 7

    def test_watchdog_keeps_an_empty_injected_log(self):
        # regression: DecisionLog defines __len__, so an empty log is
        # falsy — `decision_log or DecisionLog()` silently swapped the
        # caller's (path- and echo-bearing) log for an internal one
        log = DecisionLog()
        watchdog = FleetWatchdog(targets=["127.0.0.1:1"], decision_log=log)
        assert watchdog.log is log


# ----------------------------------------------------------------------
# watchdog decision loop (scripted hooks, no sockets)
# ----------------------------------------------------------------------
def scripted_watchdog(standbys, healthy, config=None, clock=None, promoter=None,
                      reparenter=None):
    """A sidecar-shaped watchdog whose probes consult the ``healthy`` dict."""
    promoted = []
    reparented = []

    def promote(standby):
        promoted.append(standby)
        return {"promoted": True, "epoch": 2, "applied": standby.applied}

    def reparent(orphan, winner):
        reparented.append((orphan, winner))

    watchdog = FleetWatchdog(
        targets=["127.0.0.1:1"],
        config=config or WatchdogConfig(interval=0.01, quorum=3, cooldown=5.0),
        scanner=lambda: list(standbys),
        prober=lambda primary, tenant: healthy[primary],
        promoter=promoter or promote,
        reparenter=reparenter or reparent,
        clock=clock or time.monotonic,
    )
    return watchdog, promoted, reparented


class TestWatchdogLoop:
    def test_config_validation(self):
        with pytest.raises(FleetError):
            WatchdogConfig(interval=0)
        with pytest.raises(FleetError):
            WatchdogConfig(quorum=0)
        with pytest.raises(FleetError):
            WatchdogConfig(cooldown=-1)
        with pytest.raises(FleetError):
            WatchdogConfig(probe_timeout=0)

    def test_requires_exactly_one_mode(self):
        with pytest.raises(FleetError):
            FleetWatchdog()
        with pytest.raises(FleetError):
            FleetWatchdog(manager=object(), targets=["h:1"])

    def test_no_promotion_below_quorum(self):
        standby = _Standby(endpoint="e1", tenant="t", replica_of="p", applied=9, lag=0)
        healthy = {"p": False}
        watchdog, promoted, _ = scripted_watchdog([standby], healthy)
        watchdog.tick()
        watchdog.tick()
        assert promoted == []
        assert len(watchdog.log.events("probe_failed")) == 2

    def test_quorum_of_consecutive_failures_promotes(self):
        standby = _Standby(endpoint="e1", tenant="t", replica_of="p", applied=9, lag=0)
        healthy = {"p": False}
        watchdog, promoted, _ = scripted_watchdog([standby], healthy)
        for _ in range(3):
            watchdog.tick()
        assert promoted == [standby]
        assert len(watchdog.log.events("promotion_succeeded")) == 1

    def test_recovery_resets_the_failure_counter(self):
        """A transient partition shorter than the quorum window never
        promotes — the anti-dueling guard the smoke also exercises."""
        standby = _Standby(endpoint="e1", tenant="t", replica_of="p", applied=9, lag=0)
        healthy = {"p": False}
        watchdog, promoted, _ = scripted_watchdog([standby], healthy)
        watchdog.tick()
        watchdog.tick()
        healthy["p"] = True  # partition heals one round before quorum
        watchdog.tick()
        healthy["p"] = False
        watchdog.tick()
        watchdog.tick()
        assert promoted == []
        assert len(watchdog.log.events("primary_recovered")) == 1

    def test_cooldown_suppresses_back_to_back_failovers(self):
        standby = _Standby(endpoint="e1", tenant="t", replica_of="p", applied=9, lag=0)
        healthy = {"p": False}
        now = [100.0]
        watchdog, promoted, _ = scripted_watchdog(
            [standby],
            healthy,
            config=WatchdogConfig(interval=0.01, quorum=2, cooldown=30.0),
            clock=lambda: now[0],
        )
        for _ in range(4):
            watchdog.tick()
        assert len(promoted) == 1
        assert len(watchdog.log.events("failover_suppressed")) >= 1
        now[0] += 31.0  # cool-down expires
        watchdog.tick()
        watchdog.tick()
        assert len(promoted) == 2

    def test_best_positioned_standby_wins_and_orphans_reparent(self):
        behind = _Standby(endpoint="e1", tenant="t", replica_of="p", applied=5, lag=4)
        ahead = _Standby(endpoint="e2", tenant="t", replica_of="p", applied=9, lag=0)
        healthy = {"p": False}
        watchdog, promoted, reparented = scripted_watchdog(
            [behind, ahead],
            healthy,
            config=WatchdogConfig(interval=0.01, quorum=1, cooldown=5.0),
        )
        watchdog.tick()
        assert promoted == [ahead]
        assert reparented == [(behind, ahead)]

    def test_aborted_promotion_is_recorded_not_raised(self):
        standby = _Standby(endpoint="e1", tenant="t", replica_of="p", applied=9, lag=0)
        healthy = {"p": False}

        def refuse(_standby):
            raise RuntimeError("primary is alive and refused the fence")

        watchdog, _, reparented = scripted_watchdog(
            [standby],
            healthy,
            config=WatchdogConfig(interval=0.01, quorum=1, cooldown=5.0),
            promoter=refuse,
        )
        watchdog.tick()
        assert len(watchdog.log.events("promotion_aborted")) == 1
        assert reparented == []

    def test_tenant_filter_restricts_supervision(self):
        watched = _Standby(endpoint="e1", tenant="t", replica_of="p", applied=9, lag=0)
        ignored = _Standby(endpoint="e1", tenant="u", replica_of="q", applied=9, lag=0)
        healthy = {"p": False, "q": False}
        watchdog, promoted, _ = scripted_watchdog([watched, ignored], healthy)
        watchdog.tenants = ["t"]
        for _ in range(3):
            watchdog.tick()
        assert promoted == [watched]

    def test_counters_of_vanished_primaries_are_dropped(self):
        standby = _Standby(endpoint="e1", tenant="t", replica_of="p", applied=9, lag=0)
        healthy = {"p": False}
        watchdog, promoted, _ = scripted_watchdog([standby], healthy)
        watchdog.tick()
        assert watchdog._states  # counter exists
        standbys_gone = []
        watchdog._scanner = lambda: standbys_gone
        watchdog.tick()
        assert not watchdog._states


# ----------------------------------------------------------------------
# in-process watchdog end-to-end: a real dead primary
# ----------------------------------------------------------------------
class TestInProcessWatchdog:
    def test_watchdog_promotes_when_the_primary_dies(self, tmp_path):
        primary_manager = EngineManager(
            PARAMS,
            default_engine_config=FAST,
            data_root=tmp_path / "primary",
            create_default=False,
        )
        primary_manager.create("t")
        engine = primary_manager.get("t")
        for update in TRIANGLE:
            engine.submit(update)
        engine.flush()
        server = BackgroundServer(primary_manager)
        server.start()
        standby = StandbyEngine(
            f"127.0.0.1:{server.port}",
            "t",
            data_dir=tmp_path / "standby",
            config=FAST,
            poll_interval=0.01,
        ).start()
        standby_manager = EngineManager.adopt(standby, "t")
        try:
            assert wait_until(lambda: standby.applied >= 3)
            with FleetWatchdog(
                manager=standby_manager,
                config=WatchdogConfig(
                    interval=0.05, quorum=2, cooldown=1.0, probe_timeout=0.5
                ),
            ) as watchdog:
                # healthy primary: several rounds, no promotion
                assert wait_until(lambda: watchdog.ticks >= 3)
                assert not standby.promoted
                assert watchdog.log.events("promotion_started") == []
                server.stop()
                primary_manager.close()
                assert wait_until(lambda: standby.promoted, timeout=20.0)
            assert len(watchdog.log.events("promotion_succeeded")) == 1
            standby.submit(Update.insert(3, 4))
            standby.flush()
            assert standby.applied == 4
        finally:
            standby_manager.close()


# ----------------------------------------------------------------------
# topology route, reparent route, chained standbys, ack forwarding
# ----------------------------------------------------------------------
@pytest.fixture()
def primary(tmp_path):
    manager = EngineManager(
        PARAMS,
        default_engine_config=FAST,
        data_root=tmp_path / "primary",
        create_default=False,
    )
    manager.create("t")
    engine = manager.get("t")
    for update in chain(0, 12):
        engine.submit(update)
    engine.flush()
    with BackgroundServer(manager) as server:
        client = ServiceClient("127.0.0.1", server.port, tenant="t")
        yield manager, server, client, tmp_path
        client.close()
    manager.close()


def make_standby(server, tmp_path, tenant="t", name="standby", **kwargs):
    kwargs.setdefault("config", FAST)
    kwargs.setdefault("poll_interval", 0.01)
    return StandbyEngine(
        f"127.0.0.1:{server.port}",
        tenant,
        data_dir=tmp_path / name / tenant,
        **kwargs,
    )


class TestTopologyRoute:
    def test_primary_topology_document(self, primary):
        _manager, _server, client, _tmp = primary
        document = client.topology()
        assert document["role"] == "primary"
        assert document["tenant"] == "t"
        assert document["applied"] == 12
        positions = document["shard_positions"]
        assert [row["shard"] for row in positions] == [0]
        assert positions[0]["position"] == 12
        assert isinstance(positions[0]["last_applied_at"], float)

    def test_standby_topology_and_downstream_acks(self, primary):
        manager, server, client, tmp_path = primary
        standby = make_standby(server, tmp_path).start()
        standby_manager = EngineManager.adopt(standby, "t")
        try:
            with BackgroundServer(standby_manager) as standby_server:
                standby_client = ServiceClient(
                    "127.0.0.1", standby_server.port, tenant="t"
                )
                assert wait_until(lambda: standby.applied >= 12)
                document = standby_client.topology()
                assert document["role"] == "standby"
                assert document["replica_of"] == f"127.0.0.1:{server.port}"
                assert document["promoted"] is False
                assert "lag" in document and "reparents" in document
                assert isinstance(document["last_applied_at"], float)
                # the standby acked its position upstream: visible in the
                # primary's topology as a downstream ack
                assert wait_until(
                    lambda: int(
                        client.topology().get("downstream_acks", {}).get("0", 0)
                    )
                    >= 12
                )
                standby_client.close()
        finally:
            standby_manager.close()

    def test_topology_rejects_unknown_query_params(self, primary):
        _manager, server, _client, _tmp = primary
        probe = ServiceClient("127.0.0.1", server.port, tenant="t")
        try:
            status, document, _headers = probe._request(
                "GET", "/v1/tenants/t/topology?bogus=1"
            )
        finally:
            probe.close()
        assert status == 400

    def test_topology_of_unknown_tenant_is_404(self, primary):
        _manager, _server, client, _tmp = primary
        with pytest.raises(ServiceError) as excinfo:
            client.topology("nope")
        assert excinfo.value.code == "unknown_tenant"


class TestHealthzFleetSurface:
    def test_healthz_reports_topology_and_staleness(self, primary):
        manager, server, client, tmp_path = primary
        standby = make_standby(server, tmp_path).start()
        standby_manager = EngineManager.adopt(standby, "t")
        try:
            with BackgroundServer(standby_manager) as standby_server:
                standby_client = ServiceClient("127.0.0.1", standby_server.port)
                assert wait_until(lambda: standby.applied >= 12)
                health = standby_client.healthz()
                replication = health["replication"]
                assert replication["topology"]["t"]["role"] == "standby"
                assert replication["topology"]["t"]["replica_of"] == (
                    f"127.0.0.1:{server.port}"
                )
                assert isinstance(replication["last_applied_at"]["t"], float)
                # the primary's own healthz labels the tenant primary
                primary_health = client.healthz()
                assert (
                    primary_health["replication"]["topology"]["t"]["role"]
                    == "primary"
                )
                standby_client.close()
        finally:
            standby_manager.close()

    def test_stats_shard_rows_carry_last_applied_at(self, primary):
        manager, server, client, tmp_path = primary
        standby = make_standby(server, tmp_path).start()
        try:
            assert wait_until(lambda: standby.applied >= 12)
            status = standby.replication_status()
            assert isinstance(status["last_applied_at"], float)
            rows = status["shards"]
            assert all(isinstance(row["last_applied_at"], float) for row in rows)
            # staleness is coherent: the block-level value is the oldest row
            assert status["last_applied_at"] == min(
                row["last_applied_at"] for row in rows
            )
        finally:
            standby.close()


class TestChainedStandbys:
    def test_chain_replicates_and_forwards_leaf_acks(self, primary):
        """primary -> A -> B: B converges through A, and B's ack reaches
        the primary's retention floor (the slowest-leaf guarantee)."""
        manager, server, client, tmp_path = primary
        engine = manager.get("t")
        middle = make_standby(server, tmp_path, name="mid").start()
        middle_manager = EngineManager.adopt(middle, "t")
        try:
            with BackgroundServer(middle_manager) as middle_server:
                leaf = StandbyEngine(
                    f"127.0.0.1:{middle_server.port}",
                    "t",
                    data_dir=tmp_path / "leaf" / "t",
                    config=FAST,
                    poll_interval=0.01,
                ).start()
                try:
                    assert wait_until(lambda: leaf.applied >= 12)
                    for update in chain(50, 8):
                        engine.submit(update)
                    engine.flush()
                    assert wait_until(lambda: leaf.applied >= 20)
                    universe = list(range(14)) + list(range(50, 60))
                    assert groups_of(leaf, universe) == groups_of(engine, universe)
                    # per-hop forwarding: the middle hop records the
                    # leaf's ack, and the primary's floor converges to it
                    assert wait_until(lambda: middle.downstream_acks().get(0, 0) >= 20)
                    assert wait_until(lambda: engine.retention_floor() >= 20)
                finally:
                    leaf.close()
        finally:
            middle_manager.close()

    def test_middle_hop_ack_is_capped_by_slowest_leaf(self, primary):
        manager, server, client, tmp_path = primary
        middle = make_standby(server, tmp_path, name="mid").start()
        try:
            assert wait_until(lambda: middle.applied >= 12)
            # a fake slow leaf acked only position 5 on shard 0
            middle.note_downstream_ack(0, 5)
            document = middle.fetch_wal(0, middle.position(0), 10)
            # fetch_wal carried min(own position, leaf ack) = 5 upstream
            assert wait_until(lambda: manager.acks("t").get(0) == 5)
            assert document["applied"] >= 12
        finally:
            middle.close()


class TestReparentRoute:
    def test_reparent_moves_a_standby_between_primaries(self, primary):
        """B re-parents from the primary onto sibling A and keeps
        replicating new records through the new hop."""
        manager, server, client, tmp_path = primary
        engine = manager.get("t")
        sibling = make_standby(server, tmp_path, name="sib").start()
        sibling_manager = EngineManager.adopt(sibling, "t")
        orphan = make_standby(server, tmp_path, name="orp").start()
        orphan_manager = EngineManager.adopt(orphan, "t")
        try:
            with BackgroundServer(sibling_manager) as sibling_server, \
                    BackgroundServer(orphan_manager) as orphan_server:
                assert wait_until(
                    lambda: sibling.applied >= 12 and orphan.applied >= 12
                )
                orphan_client = ServiceClient(
                    "127.0.0.1", orphan_server.port, tenant="t"
                )
                document = orphan_client.reparent_tenant(
                    f"127.0.0.1:{sibling_server.port}"
                )
                assert document["replica_of"] == f"127.0.0.1:{sibling_server.port}"
                assert document["reseeded"] is False
                assert orphan.replica_of == f"127.0.0.1:{sibling_server.port}"
                for update in chain(80, 6):
                    engine.submit(update)
                engine.flush()
                assert wait_until(lambda: orphan.applied >= 18)
                universe = list(range(14)) + list(range(80, 88))
                assert groups_of(orphan, universe) == groups_of(engine, universe)
                assert orphan_client.topology()["reparents"] == 1
                orphan_client.close()
        finally:
            orphan_manager.close()
            sibling_manager.close()

    def test_reparent_of_a_primary_tenant_is_refused(self, primary):
        _manager, _server, client, _tmp = primary
        with pytest.raises(ServiceError) as excinfo:
            client.reparent_tenant("127.0.0.1:1")
        assert excinfo.value.status == 409
        assert excinfo.value.code == "not_a_standby"

    def test_reparent_onto_unreachable_primary_is_retryable_and_safe(
        self, primary
    ):
        manager, server, client, tmp_path = primary
        engine = manager.get("t")
        standby = make_standby(server, tmp_path).start()
        standby_manager = EngineManager.adopt(standby, "t")
        try:
            with BackgroundServer(standby_manager) as standby_server:
                assert wait_until(lambda: standby.applied >= 12)
                standby_client = ServiceClient(
                    "127.0.0.1", standby_server.port, tenant="t"
                )
                with pytest.raises(ServiceError) as excinfo:
                    standby_client.reparent_tenant("127.0.0.1:1")
                assert excinfo.value.code == "primary_unreachable"
                assert excinfo.value.retryable
                # the standby still ships from its original primary
                assert standby.replica_of == f"127.0.0.1:{server.port}"
                for update in chain(70, 4):
                    engine.submit(update)
                engine.flush()
                assert wait_until(lambda: standby.applied >= 16)
                standby_client.close()
        finally:
            standby_manager.close()

    def test_reparent_requires_replica_of_string(self, primary):
        _manager, server, _client, _tmp = primary
        probe = ServiceClient("127.0.0.1", server.port, tenant="t")
        try:
            status, _document, _headers = probe._request(
                "POST", "/v1/tenants/t/reparent", {"replica_of": 7}
            )
            assert status == 400
            status, _document, _headers = probe._request(
                "POST", "/v1/tenants/t/reparent", {}
            )
            assert status == 400
        finally:
            probe.close()

    def test_manager_reparent_refuses_promoted_standby(self, primary):
        manager, server, client, tmp_path = primary
        standby = make_standby(server, tmp_path).start()
        standby_manager = EngineManager.adopt(standby, "t")
        try:
            assert wait_until(lambda: standby.applied >= 12)
            standby.promote()
            with pytest.raises(NotAStandbyError):
                standby_manager.reparent("t", "127.0.0.1:1")
        finally:
            standby_manager.close()


# ----------------------------------------------------------------------
# replica-set client routing
# ----------------------------------------------------------------------
class TestReplicaSetClient:
    def test_reads_prefer_standby_and_writes_reach_primary(self, primary):
        manager, server, client, tmp_path = primary
        engine = manager.get("t")
        standby = make_standby(server, tmp_path).start()
        standby_manager = EngineManager.adopt(standby, "t")
        try:
            with BackgroundServer(standby_manager) as standby_server:
                assert wait_until(lambda: standby.applied >= 12)
                # the standby endpoint first: writes still land on the
                # primary (the router resolves roles, not list order)
                fleet = ServiceClient(
                    tenant="t",
                    endpoints=[
                        f"127.0.0.1:{standby_server.port}",
                        f"127.0.0.1:{server.port}",
                    ],
                    topology_max_age=0.1,
                )
                try:
                    topology = fleet.topology()
                    assert topology["primary"] == f"127.0.0.1:{server.port}"
                    assert len(topology["endpoints"]) == 2
                    accepted = fleet.submit_updates(chain(90, 4))
                    assert accepted == 4
                    assert wait_until(lambda: engine.applied == 16)
                    # read barrier: read-your-writes through the fleet
                    barrier = fleet.primary_position()
                    assert barrier == 16
                    result = fleet.group_by(
                        list(range(90, 95)), min_position=barrier
                    )
                    assert wait_until(lambda: standby.applied >= 16)
                    groups = {
                        frozenset(group)
                        for group in fleet.group_by(
                            list(range(90, 95)), min_position=barrier
                        ).as_sets()
                    }
                    assert groups == groups_of(engine, range(90, 95))
                finally:
                    fleet.close()
        finally:
            standby_manager.close()

    def test_reads_survive_a_dead_standby(self, primary):
        manager, server, client, tmp_path = primary
        standby = make_standby(server, tmp_path).start()
        standby_manager = EngineManager.adopt(standby, "t")
        standby_server = BackgroundServer(standby_manager)
        standby_server.start()
        fleet = ServiceClient(
            tenant="t",
            endpoints=[
                f"127.0.0.1:{standby_server.port}",
                f"127.0.0.1:{server.port}",
            ],
            topology_max_age=0.05,
        )
        try:
            assert wait_until(lambda: standby.applied >= 12)
            assert fleet.stats()["tenant"] == "t"
            standby_server.stop()
            standby_manager.close()
            # the dead standby drops out of the topology; reads reroute
            document = fleet.stats()
            assert document["tenant"] == "t"
        finally:
            fleet.close()

    def test_writes_follow_a_manual_failover(self, primary):
        """Old primary fenced + standby promoted: the replica-set client
        re-resolves and lands writes on the new primary transparently."""
        manager, server, client, tmp_path = primary
        standby = make_standby(server, tmp_path).start()
        standby_manager = EngineManager.adopt(standby, "t")
        try:
            with BackgroundServer(standby_manager) as standby_server:
                assert wait_until(lambda: standby.applied >= 12)
                fleet = ServiceClient(
                    tenant="t",
                    endpoints=[
                        f"127.0.0.1:{server.port}",
                        f"127.0.0.1:{standby_server.port}",
                    ],
                    topology_max_age=0.05,
                )
                try:
                    assert fleet.submit_updates(chain(60, 2)) == 2
                    assert wait_until(lambda: standby.applied >= 14)
                    standby.promote()  # fences the old primary
                    assert fleet.submit_updates(chain(62, 2)) == 2
                    assert wait_until(lambda: standby.applied >= 16)
                finally:
                    fleet.close()
        finally:
            standby_manager.close()

    def test_empty_endpoints_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient(endpoints=[], tenant="t")

    def test_single_endpoint_client_ignores_min_position(self, primary):
        _manager, _server, client, _tmp = primary
        result = client.group_by([1, 2, 3], min_position=1)
        assert result.as_sets()
