"""Acceptance test: readers under live ingest observe snapshot-consistent views.

The invariant: every published view has a ``version`` v, and its query
results are *identical* to running the query against a fresh maintainer that
applied exactly the first v updates of the stream.  Concurrent readers may
see stale views, but never torn ones — each observation corresponds to some
fully-applied prefix.
"""

from __future__ import annotations

import threading

from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.graph.generators import planted_partition_graph
from repro.service.engine import ClusteringEngine, EngineConfig
from repro.workloads.updates import generate_update_sequence

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)


def _partition(group_by_result):
    return frozenset(frozenset(group) for group in group_by_result.as_sets())


def test_concurrent_readers_observe_fully_applied_prefixes():
    edges = planted_partition_graph(2, 10, 0.7, 0.1, seed=11)
    workload = generate_update_sequence(20, edges, 120, eta=0.3, seed=13)
    stream = list(workload.all_updates())
    query = list(range(20))

    # the oracle: the expected group-by partition after every prefix length
    oracle = DynStrClu(PARAMS)
    expected = {0: _partition(oracle.group_by(query))}
    for i, update in enumerate(stream, start=1):
        oracle.apply(update)
        expected[i] = _partition(oracle.group_by(query))

    config = EngineConfig(batch_size=5, flush_interval=0.005)
    engine = ClusteringEngine(PARAMS, config=config)
    observations = []
    violations = []
    done = threading.Event()

    def reader() -> None:
        while not done.is_set():
            view = engine.view()
            got = _partition(view.group_by(query))
            observations.append(view.version)
            if got != expected[view.version]:
                violations.append((view.version, got))

    threads = [threading.Thread(target=reader) for _ in range(3)]
    with engine:
        for thread in threads:
            thread.start()
        for update in stream:
            engine.submit(update)
        engine.flush(timeout=60)
        done.set()
        for thread in threads:
            thread.join()

    assert not violations, f"inconsistent views observed: {violations[:3]}"
    # the readers genuinely raced the writer: several distinct prefixes seen
    assert len(set(observations)) > 1
    # and the settled engine serves exactly the fully-applied stream
    assert engine.view().version == len(stream)
    assert _partition(engine.view().group_by(query)) == expected[len(stream)]
