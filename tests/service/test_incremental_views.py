"""Unit tests for incremental view publication.

Covers the :class:`PersistentMap` copy-on-write substrate, the
:meth:`ClusteringView.patched` algorithm (attach/detach, merges, splits,
and every fallback-to-full condition), and the engine integration (mode
counters, the ``incremental_views`` escape hatch, stats exposure).
"""

from __future__ import annotations

import pytest

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.core.result import ViewDelta, clusterings_equal
from repro.service.engine import ClusteringEngine, EngineConfig
from repro.service.views import ClusteringView, PersistentMap

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)

TWO_TRIANGLES = [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)]


def _built_maintainer(edges=TWO_TRIANGLES) -> DynStrClu:
    algo = DynStrClu(PARAMS)
    for u, v in edges:
        algo.insert_edge(u, v)
    return algo


def _families(view: ClusteringView, universe) -> set:
    """The cluster family over ``universe`` as a set of frozensets."""
    by_key = {}
    for v in universe:
        for key in view.cluster_of(v):
            by_key.setdefault(key, set()).add(v)
    return {frozenset(members) for members in by_key.values()}


def _assert_equivalent(incremental: ClusteringView, full: ClusteringView, universe):
    """Incremental and full views must agree up to cluster-key relabelling."""
    assert _families(incremental, universe) == _families(full, universe)
    for v in universe:
        assert len(incremental.cluster_of(v)) == len(full.cluster_of(v)), v
    stats_a = incremental.stats()
    stats_b = full.stats()
    for key in ("view_version", "num_vertices", "num_edges", "clusters",
                "cores", "hubs", "noise", "largest_cluster"):
        assert stats_a[key] == stats_b[key], key
    assert clusterings_equal(incremental.clustering, full.clustering)


class TestPersistentMap:
    def test_build_and_lookup(self):
        pm = PersistentMap.build({i: i * i for i in range(100)})
        assert len(pm) == 100
        assert pm[7] == 49
        assert pm.get(200) is None
        assert pm.get(200, ()) == ()
        assert 7 in pm and 200 not in pm
        assert dict(pm.items()) == {i: i * i for i in range(100)}
        assert sorted(pm) == list(range(100))

    def test_assign_is_persistent(self):
        base = PersistentMap.build({i: i for i in range(32)})
        patched = base.assign({1: "one", 99: "new", 2: None})
        # the parent is untouched
        assert base[1] == 1 and base[2] == 2 and 99 not in base
        assert len(base) == 32
        # the child sees the changes
        assert patched[1] == "one"
        assert patched[99] == "new"
        assert 2 not in patched
        assert len(patched) == 32  # +1 insert, -1 delete

    def test_assign_shares_untouched_buckets(self):
        base = PersistentMap.build({i: i for i in range(256)})
        patched = base.assign({0: "zero"})
        shared = sum(
            1 for a, b in zip(base._buckets, patched._buckets) if a is b
        )
        assert shared == len(base._buckets) - 1

    def test_deleting_missing_key_is_harmless(self):
        base = PersistentMap.build({1: "a"})
        patched = base.assign({2: None})
        assert len(patched) == 1 and patched[1] == "a"

    def test_empty_assign_returns_self(self):
        base = PersistentMap.build({1: "a"})
        assert base.assign({}) is base

    def test_overloaded_flags_outgrown_geometry(self):
        pm = PersistentMap.build({i: i for i in range(4)})
        assert not pm.overloaded
        grown = pm.assign({i: i for i in range(4, 200)})
        assert grown.overloaded


class TestPatched:
    def test_patch_matches_full_capture_after_attach(self):
        algo = _built_maintainer()
        algo.drain_view_delta()
        view = ClusteringView.capture(algo, version=6)
        algo.insert_edge(3, 7)  # attach a new satellite vertex to a core
        flips = algo.drain_view_delta().flips
        patched = view.patched(algo, flips, version=7)
        assert patched is not None
        _assert_equivalent(patched, ClusteringView.capture(algo, 7), range(1, 9))

    def test_patch_matches_full_capture_after_merge(self):
        algo = _built_maintainer()
        algo.drain_view_delta()
        view = ClusteringView.capture(algo, version=6)
        # merge the two triangles through a shared hub path
        algo.insert_edge(3, 4)
        algo.insert_edge(3, 5)
        flips = algo.drain_view_delta().flips
        patched = view.patched(algo, flips, version=8)
        assert patched is not None
        _assert_equivalent(patched, ClusteringView.capture(algo, 8), range(1, 8))

    def test_patch_matches_full_capture_after_split(self):
        edges = TWO_TRIANGLES + [(3, 4)]
        algo = _built_maintainer(edges)
        algo.drain_view_delta()
        view = ClusteringView.capture(algo, version=len(edges))
        algo.delete_edge(1, 2)  # demote cores of the first triangle
        algo.delete_edge(2, 3)
        flips = algo.drain_view_delta().flips
        patched = view.patched(algo, flips, version=len(edges) + 2)
        assert patched is not None
        _assert_equivalent(
            patched, ClusteringView.capture(algo, len(edges) + 2), range(1, 8)
        )

    def test_untouched_clusters_keep_their_keys(self):
        algo = _built_maintainer()
        algo.drain_view_delta()
        view = ClusteringView.capture(algo, version=6)
        second_key = view.cluster_of(4)
        algo.insert_edge(1, 7)  # touches only the first triangle's cluster
        patched = view.patched(algo, algo.drain_view_delta().flips, version=7)
        assert patched is not None
        assert patched.cluster_of(4) == second_key

    def test_patch_from_empty_view(self):
        algo = DynStrClu(PARAMS)
        view = ClusteringView.empty()
        for u, v in TWO_TRIANGLES[:3]:
            algo.insert_edge(u, v)
        patched = view.patched(algo, algo.drain_view_delta().flips, version=3)
        assert patched is not None
        _assert_equivalent(patched, ClusteringView.capture(algo, 3), range(1, 5))

    def test_max_dirty_falls_back(self):
        algo = _built_maintainer()
        algo.drain_view_delta()
        view = ClusteringView.capture(algo, version=6)
        algo.insert_edge(3, 4)
        flips = algo.drain_view_delta().flips
        assert view.patched(algo, flips, version=7, max_dirty=1) is None

    def test_closure_violation_falls_back(self):
        """An under-reported flip set must refuse to patch, not corrupt."""
        algo = _built_maintainer()
        algo.drain_view_delta()
        view = ClusteringView.capture(algo, version=6)
        algo.insert_edge(3, 4)  # merges the two clusters
        algo.insert_edge(3, 5)
        # report only one endpoint: the merged cluster reaches outside the
        # dirty region and the patcher must bail out
        assert view.patched(algo, {5}, version=8) is None

    def test_overloaded_buckets_fall_back(self):
        algo = DynStrClu(PARAMS)
        view = ClusteringView.empty()
        for i in range(0, 300, 3):
            algo.insert_edge(i, i + 1)
            algo.insert_edge(i + 1, i + 2)
            algo.insert_edge(i, i + 2)
        # the empty view has one bucket: far too small for 300 vertices
        assert view.patched(algo, algo.drain_view_delta().flips, version=300) is None


class TestViewDelta:
    def test_dynstrclu_reports_and_resets(self):
        algo = _built_maintainer()
        delta = algo.drain_view_delta()
        assert not delta.full_rebuild
        assert {1, 2, 3, 4, 5, 6} <= set(delta.flips)
        assert algo.drain_view_delta().flips == frozenset()

    def test_constructors(self):
        assert ViewDelta.full().full_rebuild
        tracked = ViewDelta.of({1, 2})
        assert not tracked.full_rebuild
        assert tracked.flips == frozenset({1, 2})


class TestEngineIntegration:
    def test_dynstrclu_publishes_incrementally(self):
        config = EngineConfig(batch_size=4, flush_interval=0.01)
        with ClusteringEngine(PARAMS, config=config) as engine:
            for u, v in TWO_TRIANGLES:
                engine.submit(Update.insert(u, v))
            assert engine.flush(timeout=10)
            for u, v in TWO_TRIANGLES:
                engine.submit(Update.delete(u, v))
            assert engine.flush(timeout=10)
            assert engine.metrics.get("view_capture_incremental") > 0
            stats = engine.stats()
        capture = stats["metrics"]["view_capture"]
        assert capture["count"] > 0
        assert capture["flip_set_size"]["count"] > 0
        assert capture["flip_set_size"]["max"] >= 1

    def test_incremental_views_can_be_disabled(self):
        config = EngineConfig(
            batch_size=4, flush_interval=0.01, incremental_views=False
        )
        with ClusteringEngine(PARAMS, config=config) as engine:
            for u, v in TWO_TRIANGLES:
                engine.submit(Update.insert(u, v))
            assert engine.flush(timeout=10)
            assert engine.metrics.get("view_capture_incremental") == 0
            assert engine.metrics.get("view_capture_full") > 0

    def test_fallback_backend_publishes_full_captures(self):
        config = EngineConfig(batch_size=4, flush_interval=0.01)
        with ClusteringEngine(PARAMS, config=config, backend="scan-exact") as engine:
            for u, v in TWO_TRIANGLES:
                engine.submit(Update.insert(u, v))
            assert engine.flush(timeout=10)
            assert engine.metrics.get("view_capture_incremental") == 0
            assert engine.metrics.get("view_capture_full") > 0
            assert {frozenset(g) for g in engine.group_by([1, 2, 3]).as_sets()} == {
                frozenset({1, 2, 3})
            }

    def test_view_rebuild_fraction_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(view_rebuild_fraction=1.5)
