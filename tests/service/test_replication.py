"""Unit tests of WAL-shipping replication and warm-standby promotion.

Covers the WAL-range serving primitive (segments, gaps, torn retained
segments), engine-level WAL segment retention across checkpoints, epoch
fencing (persistence, staleness, write rejection), the replication HTTP
routes, standby catch-up / restart / re-seed, and promotion semantics —
including the crash-during-promotion scenario where the fence must hold
on the demoted primary.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.persistence.updatelog import list_wal_segments, write_update_log
from repro.service import (
    BackgroundServer,
    ClusteringEngine,
    EngineConfig,
    EngineFenced,
    EngineManager,
    NotAStandbyError,
    ReadOnlyEngineError,
    ServiceClient,
    ServiceError,
    StandbyEngine,
)
from repro.service.replication import (
    WalGapError,
    parse_primary_url,
    read_wal_range,
)

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
FAST = EngineConfig(batch_size=8, flush_interval=0.005)

TRIANGLE = [Update.insert(1, 2), Update.insert(2, 3), Update.insert(1, 3)]


def chain(start: int, count: int):
    """A path graph's insert stream: count edges starting at vertex start."""
    return [Update.insert(start + i, start + i + 1) for i in range(count)]


def wait_until(predicate, timeout: float = 15.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def groups_of(engine, universe) -> set:
    return {frozenset(group) for group in engine.group_by(universe).as_sets()}


class TestParsePrimaryUrl:
    def test_host_port_and_http_scheme(self):
        assert parse_primary_url("127.0.0.1:8321") == ("127.0.0.1", 8321)
        assert parse_primary_url("http://example.test:80/") == ("example.test", 80)

    def test_rejects_https_and_malformed(self):
        with pytest.raises(ValueError):
            parse_primary_url("https://example.test:443")
        with pytest.raises(ValueError):
            parse_primary_url("no-port")
        with pytest.raises(ValueError):
            parse_primary_url("host:notaport")


class TestReadWalRange:
    def _segments(self, tmp_path, *specs):
        """Write ``(name, base, updates)`` specs and list them back."""
        from repro.persistence.updatelog import UpdateLogWriter

        for name, base, updates in specs:
            with UpdateLogWriter(tmp_path / name, base=base) as writer:
                writer.extend(updates)
        return list_wal_segments(tmp_path, active_name="wal.log")

    def test_range_spans_retained_and_active_segments(self, tmp_path):
        stream = chain(0, 10)
        segments = self._segments(
            tmp_path,
            ("wal-000000000000.log", 0, stream[:4]),
            ("wal-000000000004.log", 4, stream[4:7]),
            ("wal.log", 7, stream[7:]),
        )
        chunk = read_wal_range(segments, 2, 100, 10)
        assert chunk.records == stream[2:]
        assert chunk.torn is False
        assert read_wal_range(segments, 0, 3, 10).records == stream[:3]

    def test_limit_position_caps_the_served_suffix(self, tmp_path):
        stream = chain(0, 6)
        segments = self._segments(tmp_path, ("wal.log", 0, stream))
        chunk = read_wal_range(segments, 0, 100, 4)
        assert chunk.records == stream[:4]
        assert read_wal_range(segments, 4, 100, 4).records == []

    def test_gap_below_horizon_raises_with_min_position(self, tmp_path):
        stream = chain(0, 6)
        segments = self._segments(tmp_path, ("wal.log", 4, stream[4:]))
        with pytest.raises(WalGapError) as excinfo:
            read_wal_range(segments, 2, 100, 6)
        assert excinfo.value.min_position == 4

    def test_discontinuous_retained_segments_raise_gap(self, tmp_path):
        stream = chain(0, 10)
        segments = self._segments(
            tmp_path,
            ("wal-000000000000.log", 0, stream[:3]),
            # positions [3, 6) were pruned away
            ("wal.log", 6, stream[6:]),
        )
        with pytest.raises(WalGapError) as excinfo:
            read_wal_range(segments, 1, 100, 10)
        assert excinfo.value.min_position == 6

    def test_damaged_closed_segment_reports_torn(self, tmp_path):
        stream = chain(0, 10)
        # the retained segment claims [0, 5) but only holds 3 whole
        # entries plus a torn tail: the positions [3, 5) are gone
        path = tmp_path / "wal-000000000000.log"
        write_update_log(stream[:3], path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("+ torn")
        self._segments(tmp_path, ("wal.log", 5, stream[5:]))
        segments = list_wal_segments(tmp_path, active_name="wal.log")
        chunk = read_wal_range(segments, 0, 100, 10)
        assert chunk.records == stream[:3]
        assert chunk.torn is True

    def test_empty_when_caught_up(self, tmp_path):
        segments = self._segments(tmp_path, ("wal.log", 0, chain(0, 3)))
        chunk = read_wal_range(segments, 3, 100, 3)
        assert chunk.records == [] and chunk.torn is False

    def test_active_rotation_between_list_and_open_is_transient(self, tmp_path):
        """The writer can rotate wal.log between list_wal_segments() and
        the open; serving with the stale base would relabel records with
        stream positions they do not hold (silent, permanent replica
        divergence).  The read must stop at the rotation instead and let
        the next poll list the rotated layout."""
        import os

        from repro.persistence.updatelog import UpdateLogWriter

        stream = chain(0, 10)
        segments = self._segments(
            tmp_path,
            ("wal-000000000000.log", 0, stream[:4]),
            ("wal.log", 4, stream[4:8]),
        )
        # a checkpoint rotates the active log after the listing was taken
        os.replace(tmp_path / "wal.log", tmp_path / "wal-000000000004.log")
        with UpdateLogWriter(tmp_path / "wal.log", base=8) as writer:
            writer.extend(stream[8:])
        chunk = read_wal_range(segments, 2, 100, 10)
        # only the still-immutable retained prefix — never records from
        # the new active file mislabelled with pre-rotation positions
        assert chunk.records == stream[2:4]
        assert chunk.torn is False
        # the next poll's fresh listing serves the rest, exactly
        fresh = list_wal_segments(tmp_path, active_name="wal.log")
        assert read_wal_range(fresh, 4, 100, 10).records == stream[4:]

    def test_vanished_active_segment_is_transient(self, tmp_path):
        stream = chain(0, 6)
        segments = self._segments(
            tmp_path,
            ("wal-000000000000.log", 0, stream[:4]),
            ("wal.log", 4, stream[4:]),
        )
        # mid-rotation gap: wal.log renamed away, not yet recreated
        (tmp_path / "wal.log").unlink()
        chunk = read_wal_range(segments, 1, 100, 6)
        assert chunk.records == stream[1:4]
        assert chunk.torn is False

    def test_pruned_retained_segment_reports_gap_not_an_error(self, tmp_path):
        stream = chain(0, 9)
        segments = self._segments(
            tmp_path,
            ("wal-000000000000.log", 0, stream[:3]),
            ("wal-000000000003.log", 3, stream[3:6]),
            ("wal.log", 6, stream[6:]),
        )
        # pruned by a concurrent checkpoint after the listing was taken
        (tmp_path / "wal-000000000000.log").unlink()
        with pytest.raises(WalGapError) as excinfo:
            read_wal_range(segments, 0, 100, 9)
        assert excinfo.value.min_position == 3


class TestWalRetention:
    def test_checkpoints_rotate_and_prune_segments(self, tmp_path):
        config = EngineConfig(
            batch_size=4,
            flush_interval=0.005,
            checkpoint_every=4,
            wal_retain_segments=2,
        )
        with ClusteringEngine(PARAMS, config=config, data_dir=tmp_path) as engine:
            for update in chain(0, 20):
                engine.submit(update)
            engine.flush()
            segments = engine.wal_segments()
            retained = [s for s in segments if not s.active]
            assert len(retained) <= 2
            assert segments[-1].active
            # the retained suffix + active segment is contiguous
            bases = [s.base for s in segments]
            assert bases == sorted(bases)
            # everything from the earliest retained base is servable
            chunk = read_wal_range(
                segments, bases[0], 1000, engine.wal_position
            )
            assert len(chunk.records) == engine.wal_position - bases[0]
            assert not chunk.torn

    def test_zero_retention_keeps_only_the_active_segment(self, tmp_path):
        config = EngineConfig(
            batch_size=4,
            flush_interval=0.005,
            checkpoint_every=4,
            wal_retain_segments=0,
        )
        with ClusteringEngine(PARAMS, config=config, data_dir=tmp_path) as engine:
            for update in chain(0, 12):
                engine.submit(update)
            engine.flush()
            assert all(segment.active for segment in engine.wal_segments())

    def test_restart_retains_the_previous_wal_as_a_segment(self, tmp_path):
        with ClusteringEngine(PARAMS, config=FAST, data_dir=tmp_path) as engine:
            for update in TRIANGLE:
                engine.submit(update)
            engine.flush()
        restarted = ClusteringEngine(config=FAST, data_dir=tmp_path)
        try:
            segments = restarted.wal_segments()
            # the pre-restart WAL (3 entries) is retained; serving can
            # still hand a standby the whole stream from position 0
            chunk = read_wal_range(segments, 0, 100, restarted.wal_position)
            assert len(chunk.records) == 3
        finally:
            restarted.close()


class TestFencing:
    def test_fence_rejects_writes_and_persists(self, tmp_path):
        engine = ClusteringEngine(PARAMS, config=FAST, data_dir=tmp_path).start()
        try:
            engine.submit(Update.insert(1, 2))
            engine.flush()
            engine.fence(3)
            assert engine.fenced and engine.epoch == 3
            with pytest.raises(EngineFenced) as excinfo:
                engine.submit(Update.insert(2, 3))
            assert excinfo.value.epoch == 3
        finally:
            engine.close()
        # the fence survives a restart
        restarted = ClusteringEngine(config=FAST, data_dir=tmp_path).start()
        try:
            assert restarted.fenced and restarted.epoch == 3
            with pytest.raises(EngineFenced):
                restarted.submit(Update.insert(2, 3))
        finally:
            restarted.close()

    def test_stale_fence_epoch_is_refused(self, tmp_path):
        engine = ClusteringEngine(PARAMS, config=FAST, data_dir=tmp_path).start()
        try:
            engine.fence(5)
            with pytest.raises(ValueError):
                engine.fence(5)
            with pytest.raises(ValueError):
                engine.fence(4)
        finally:
            engine.close()

    def test_set_epoch_unfences(self, tmp_path):
        engine = ClusteringEngine(PARAMS, config=FAST, data_dir=tmp_path).start()
        try:
            engine.fence(2)
            engine.set_epoch(3)
            assert not engine.fenced and engine.epoch == 3
            engine.submit(Update.insert(1, 2))
            engine.flush()
            assert engine.applied == 1
        finally:
            engine.close()

    def test_sharded_fence_pins_every_shard_manifest(self, tmp_path):
        from repro.service import make_engine

        engine = make_engine(
            PARAMS,
            config=EngineConfig(batch_size=8, flush_interval=0.005, shards=3),
            data_dir=tmp_path,
        ).start()
        try:
            engine.fence(4)
            assert engine.fenced and engine.epoch == 4
            assert all(shard.epoch == 4 and shard.fenced for shard in engine.shards)
            for index in range(3):
                assert (tmp_path / f"shard-{index}" / "replication.json").exists()
            with pytest.raises(EngineFenced):
                engine.submit(Update.insert(1, 2))
            with pytest.raises(ValueError):
                engine.fence(4)
        finally:
            engine.close()

    def test_sharded_partial_fence_failure_fails_closed(self, tmp_path):
        """An I/O failure fencing a later shard must leave the engine
        rejecting writes (a prefix of the shards is durably fenced; more
        writes would poison the router), not half-open."""
        from repro.service import make_engine

        engine = make_engine(
            PARAMS,
            config=EngineConfig(batch_size=8, flush_interval=0.005, shards=3),
            data_dir=tmp_path,
        ).start()
        try:
            def failing_fence(epoch):
                raise OSError("disk full persisting the fence")

            engine.shards[1].fence = failing_fence
            with pytest.raises(OSError):
                engine.fence(4)
            assert engine.fenced  # fail closed
            with pytest.raises(EngineFenced):
                engine.submit(Update.insert(1, 2))
        finally:
            engine.close()


# ----------------------------------------------------------------------
# HTTP surface + standby lifecycle
# ----------------------------------------------------------------------
@pytest.fixture()
def primary(tmp_path):
    """A served primary manager with a durable tenant ``t`` (12 updates)."""
    manager = EngineManager(
        PARAMS,
        default_engine_config=FAST,
        data_root=tmp_path / "primary",
        create_default=False,
    )
    manager.create("t")
    engine = manager.get("t")
    for update in chain(0, 12):
        engine.submit(update)
    engine.flush()
    with BackgroundServer(manager) as server:
        client = ServiceClient("127.0.0.1", server.port, tenant="t")
        yield manager, server, client, tmp_path
        client.close()
    manager.close()


def make_standby(server, tmp_path, tenant="t", **kwargs):
    kwargs.setdefault("config", FAST)
    kwargs.setdefault("poll_interval", 0.01)
    return StandbyEngine(
        f"127.0.0.1:{server.port}",
        tenant,
        data_dir=tmp_path / "standby" / tenant,
        **kwargs,
    )


class TestReplicationRoutes:
    def test_wal_route_serves_records_and_positions(self, primary):
        _manager, _server, client, _tmp = primary
        document = client.fetch_wal(0, max_records=5, ack=0)
        assert document["from"] == 0
        assert len(document["records"]) == 5
        assert document["position"] == 5
        assert document["applied"] == 12
        assert document["torn"] is False
        rest = client.fetch_wal(5)
        assert len(rest["records"]) == 7

    def test_wal_route_validates_parameters(self, primary):
        _manager, _server, client, _tmp = primary
        with pytest.raises(ServiceError) as excinfo:
            client.fetch_wal(0, shard=1)
        assert excinfo.value.status == 400  # unsharded tenant: shard must be 0
        status, document, _ = _raw_get(client, "/v1/tenants/t/wal?from=abc")
        assert status == 400

    def test_snapshot_route_serves_the_reseed_payload(self, primary):
        _manager, _server, client, _tmp = primary
        document = client.fetch_snapshot()
        assert document["tenant"] == "t"
        assert document["position"] == 0  # checkpoint was cut at creation
        assert document["snapshot"]["format"] == "repro-strclu-snapshot"

    def test_fence_route_fences_and_reports_stale_epochs(self, primary):
        manager, _server, client, _tmp = primary
        assert client.fence_tenant(2) == {"tenant": "t", "epoch": 2, "fenced": True}
        with pytest.raises(ServiceError) as excinfo:
            client.submit_updates([Update.insert(100, 101)])
        assert excinfo.value.status == 409
        assert excinfo.value.code == "tenant_fenced"
        with pytest.raises(ServiceError) as excinfo:
            client.fence_tenant(1)
        assert excinfo.value.code == "stale_epoch"
        # reads still work on a fenced primary (it keeps serving + shipping)
        assert client.stats()["replication"]["fenced"] is True
        assert len(client.fetch_wal(0)["records"]) == 12

    def test_promote_of_a_regular_tenant_is_409(self, primary):
        manager, _server, client, _tmp = primary
        with pytest.raises(ServiceError) as excinfo:
            client.promote_tenant()
        assert excinfo.value.status == 409
        assert excinfo.value.code == "not_a_standby"
        with pytest.raises(NotAStandbyError):
            manager.promote("t")

    def test_create_rejects_a_self_referential_replica(self, primary):
        _manager, server, client, _tmp = primary
        with pytest.raises(ServiceError) as excinfo:
            client.create_tenant("loopy", replica_of=f"127.0.0.1:{server.port}")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"

    def test_primary_stats_report_standby_acks(self, primary):
        _manager, _server, client, _tmp = primary
        client.fetch_wal(0, ack=0)
        client.fetch_wal(7, ack=7)
        block = client.stats()["replication"]
        assert block["role"] == "primary"
        assert block["acked"] == {"0": 7}


class TestStandbyEngine:
    def test_standby_catches_up_and_serves_reads(self, primary):
        manager, server, client, tmp = primary
        engine = manager.get("t")
        standby = make_standby(server, tmp).start()
        try:
            assert wait_until(lambda: standby.applied >= engine.applied)
            universe = range(14)
            assert groups_of(standby, universe) == groups_of(engine, universe)
            # continuous replay: new primary writes arrive without prompting
            client.submit_updates(chain(100, 5))
            engine.flush()
            assert wait_until(lambda: standby.applied >= engine.applied)
            assert groups_of(standby, range(100, 106)) == groups_of(
                engine, range(100, 106)
            )
            status = standby.replication_status()
            assert status["role"] == "standby"
            assert status["lag"] == 0
            assert status["shards"][0]["connected"] is True
        finally:
            standby.close()

    def test_standby_rejects_writes_until_promoted(self, primary):
        _manager, server, _client, tmp = primary
        standby = make_standby(server, tmp).start()
        try:
            with pytest.raises(ReadOnlyEngineError):
                standby.submit(Update.insert(1, 2))
            with pytest.raises(ReadOnlyEngineError):
                standby.submit_many([Update.insert(1, 2)])
        finally:
            standby.close()

    def test_standby_restart_resumes_from_local_state(self, primary):
        manager, server, _client, tmp = primary
        engine = manager.get("t")
        standby = make_standby(server, tmp).start()
        assert wait_until(lambda: standby.applied >= engine.applied)
        standby.close()
        # more primary traffic while the standby is down
        for update in chain(200, 6):
            engine.submit(update)
        engine.flush()
        restarted = make_standby(server, tmp).start()
        try:
            assert restarted.recovered_updates >= 0
            assert wait_until(lambda: restarted.applied >= engine.applied)
            universe = list(range(14)) + list(range(200, 208))
            assert groups_of(restarted, universe) == groups_of(engine, universe)
        finally:
            restarted.close()

    def test_standby_reseeds_after_falling_below_the_horizon(self, tmp_path):
        """Close the standby, rotate the primary's WAL past its position
        with zero retention, restart: the shipper hits ``wal_gap`` and the
        standby re-seeds from the primary's snapshot."""
        config = EngineConfig(
            batch_size=4,
            flush_interval=0.005,
            checkpoint_every=8,
            wal_retain_segments=0,
        )
        manager = EngineManager(
            PARAMS,
            default_engine_config=config,
            data_root=tmp_path / "primary",
            create_default=False,
        )
        manager.create("t")
        engine = manager.get("t")
        for update in chain(0, 6):
            engine.submit(update)
        engine.flush()
        with BackgroundServer(manager) as server:
            standby = make_standby(server, tmp_path, config=config).start()
            assert wait_until(lambda: standby.applied >= engine.applied)
            standby.close()
            # rotate far past the standby's position while it is down
            for update in chain(100, 40):
                engine.submit(update)
            engine.flush()
            segments = engine.wal_segments()
            assert segments[0].base > 6  # horizon moved past the standby
            restarted = make_standby(server, tmp_path, config=config).start()
            try:
                assert wait_until(lambda: restarted.applied >= engine.applied)
                assert restarted.replication_status()["reseeds"] >= 1
                universe = list(range(8)) + list(range(100, 142))
                assert groups_of(restarted, universe) == groups_of(engine, universe)
            finally:
                restarted.close()
        manager.close()

    def test_standby_of_unknown_or_nondurable_tenant_fails_cleanly(self, primary):
        _manager, server, _client, tmp = primary
        with pytest.raises(ServiceError):
            make_standby(server, tmp, tenant="ghost")

    def test_standby_restarts_while_the_primary_is_dead(self, tmp_path):
        """A warm standby must come back (and stay promotable) without
        its primary — the exact failover scenario it exists for."""
        manager = EngineManager(
            PARAMS,
            default_engine_config=FAST,
            data_root=tmp_path / "primary",
            create_default=False,
        )
        manager.create("t")
        engine = manager.get("t")
        for update in TRIANGLE:
            engine.submit(update)
        engine.flush()
        with BackgroundServer(manager) as server:
            port = server.port
            standby = make_standby(server, tmp_path).start()
            assert wait_until(lambda: standby.applied >= 3)
            standby.close()
        manager.close()  # primary gone for good
        restarted = StandbyEngine(
            f"127.0.0.1:{port}",
            "t",
            data_dir=tmp_path / "standby" / "t",
            config=FAST,
            poll_interval=0.01,
        ).start()
        try:
            assert restarted.applied == 3
            assert groups_of(restarted, range(5)) == {frozenset({1, 2, 3})}
            info = restarted.promote()
            assert info["promoted"] and info["fenced_primary"] is False
            restarted.submit(Update.insert(3, 4))
            restarted.flush()
            assert restarted.applied == 4
        finally:
            restarted.close()

    def test_first_seed_without_a_primary_fails_cleanly(self, tmp_path):
        from repro.service import ReplicationError

        with pytest.raises(ReplicationError):
            StandbyEngine(
                "127.0.0.1:1", "t", data_dir=tmp_path / "s", config=FAST
            )

    def test_failed_reseed_leaves_local_state_intact(self, primary):
        """The re-seed download is staged before any state is destroyed:
        a primary dying mid-re-seed must not brick the standby."""
        manager, server, _client, tmp = primary
        engine = manager.get("t")
        standby = make_standby(server, tmp).start()
        try:
            assert wait_until(lambda: standby.applied >= engine.applied)
            before = standby.applied
            original = standby._client.fetch_snapshot
            standby._client.fetch_snapshot = _raise_oserror
            try:
                with pytest.raises(OSError):
                    standby.reseed(reason="test")
            finally:
                standby._client.fetch_snapshot = original
            # untouched: same position, reads still served, no reseed done
            assert standby.applied == before
            assert standby.replication_status()["reseeds"] == 0
            assert groups_of(standby, range(14)) == groups_of(engine, range(14))
            standby.reseed(reason="now for real")
            assert standby.replication_status()["reseeds"] == 1
            assert wait_until(lambda: standby.applied >= engine.applied)
        finally:
            standby.close()


class TestPromotion:
    def test_promote_fences_primary_and_flips_writable(self, primary):
        manager, server, client, tmp = primary
        engine = manager.get("t")
        standby = make_standby(server, tmp).start()
        try:
            assert wait_until(lambda: standby.applied >= engine.applied)
            info = standby.promote()
            assert info["promoted"] is True
            assert info["epoch"] == 1
            assert info["fenced_primary"] is True
            assert info["applied"] == engine.applied
            # the demoted primary rejects writes...
            with pytest.raises(ServiceError) as excinfo:
                client.submit_updates([Update.insert(500, 501)])
            assert excinfo.value.code == "tenant_fenced"
            # ...and the promoted standby accepts them
            standby.submit(Update.insert(500, 501))
            standby.flush()
            assert standby.applied == info["applied"] + 1
            assert standby.replication_status()["role"] == "primary"
            # promotion is idempotent
            assert standby.promote() == info
        finally:
            standby.close()

    def test_promote_survives_a_dead_primary(self, tmp_path):
        manager = EngineManager(
            PARAMS,
            default_engine_config=FAST,
            data_root=tmp_path / "primary",
            create_default=False,
        )
        manager.create("t")
        engine = manager.get("t")
        for update in TRIANGLE:
            engine.submit(update)
        engine.flush()
        with BackgroundServer(manager) as server:
            standby = make_standby(server, tmp_path).start()
            assert wait_until(lambda: standby.applied >= 3)
        manager.close()  # the primary (and its server) is now gone
        try:
            info = standby.promote()
            assert info["promoted"] is True
            assert info["fenced_primary"] is False  # unreachable: presumed dead
            standby.submit(Update.insert(10, 11))
            standby.flush()
            assert standby.applied == 4
        finally:
            standby.close()

    def test_promote_refences_above_a_primary_that_is_ahead(self, primary):
        """A live primary at a newer epoch must be fenced *above* that
        epoch, never silently left writable (the split-brain hazard)."""
        manager, server, client, tmp = primary
        engine = manager.get("t")
        standby = make_standby(server, tmp).start()
        try:
            assert wait_until(lambda: standby.applied >= engine.applied)
            # the primary jumped ahead out-of-band (e.g. an operator or a
            # competing standby fenced it at 5) — note: still serving WAL
            engine.fence(5)
            info = standby.promote()
            assert info["fenced_primary"] is True
            assert info["epoch"] == 6  # learned 5, fenced strictly above
            assert engine.epoch == 6 and engine.fenced
        finally:
            standby.close()

    def test_promote_aborts_when_a_live_primary_fails_the_fence(self, primary):
        """A live primary whose fence errors unexpectedly (e.g. it could
        not persist the fence) may still be writable — promotion must
        abort and the standby keep replicating, never split the brain."""
        from repro.service import ReplicationError

        manager, server, client, tmp = primary
        engine = manager.get("t")
        standby = make_standby(server, tmp).start()
        try:
            assert wait_until(lambda: standby.applied >= engine.applied)

            def failing_fence(epoch, name=None):
                raise ServiceError(
                    500,
                    {
                        "error": {
                            "code": "internal",
                            "message": "fence persist failed",
                            "retryable": False,
                        }
                    },
                )

            standby._client.fence_tenant = failing_fence
            with pytest.raises(ReplicationError):
                standby.promote()
            assert standby.promoted is False
            with pytest.raises(ReadOnlyEngineError):
                standby.submit(Update.insert(1, 99))
            # the primary was never fenced and still takes writes...
            client.submit_updates([Update.insert(600, 601)])
            engine.flush()
            # ...and the aborted promotion restarted the shippers
            assert wait_until(lambda: standby.applied >= engine.applied)
            assert groups_of(standby, range(600, 602)) == groups_of(
                engine, range(600, 602)
            )
        finally:
            standby.close()

    def test_promote_proceeds_when_the_primary_tenant_is_gone(self, primary):
        """unknown_tenant proves the fence is moot: there is nothing left
        on the primary to split the brain with."""
        manager, server, _client, tmp = primary
        engine = manager.get("t")
        standby = make_standby(server, tmp).start()
        try:
            assert wait_until(lambda: standby.applied >= engine.applied)

            def tenant_gone(epoch, name=None):
                raise ServiceError(
                    404,
                    {
                        "error": {
                            "code": "unknown_tenant",
                            "message": "no tenant named 't'",
                            "retryable": False,
                        }
                    },
                )

            standby._client.fence_tenant = tenant_gone
            info = standby.promote()
            assert info["promoted"] is True
            assert info["fenced_primary"] is False
            standby.submit(Update.insert(700, 701))
            standby.flush()
        finally:
            standby.close()

    def test_crash_during_promotion_leaves_the_fence_holding(self, primary):
        """Fence ordered before the flip: a standby that dies between the
        two leaves the demoted primary fenced (persisted), and a later
        promotion attempt completes at a strictly newer epoch."""
        manager, server, client, tmp = primary
        engine = manager.get("t")
        standby = make_standby(server, tmp).start()
        try:
            assert wait_until(lambda: standby.applied >= engine.applied)
            # the promotion's first step: fence at seen epoch + 1 — then
            # the standby "crashes" before flipping itself writable
            client.fence_tenant(1)
            standby.kill()
            # the fence holds on the primary, across a full restart
            with pytest.raises(ServiceError) as excinfo:
                client.submit_updates([Update.insert(700, 701)])
            assert excinfo.value.code == "tenant_fenced"
        finally:
            pass
        replayed = ClusteringEngine(config=FAST, data_dir=tmp / "primary" / "t")
        try:
            assert replayed.fenced and replayed.epoch == 1
            with pytest.raises(EngineFenced):
                replayed.submit(Update.insert(700, 701))
        finally:
            replayed.kill()  # never checkpoint into the live primary's dir
        # a fresh standby attempt later completes at a newer epoch: it
        # learns epoch 1 from the fenced primary's WAL route and promotes
        # at 2 (the fenced primary still serves WAL + snapshot reads)
        second = make_standby(server, tmp, tenant="t")
        second.data_dir = second.data_dir  # (same local state is fine)
        second.start()
        try:
            assert wait_until(lambda: second.applied >= engine.applied)
            assert wait_until(lambda: second.replication_status()["primary_epoch"] == 1)
            info = second.promote()
            assert info["epoch"] == 2
            second.submit(Update.insert(700, 701))
            second.flush()
        finally:
            second.close()


class TestShardedStandby:
    def test_sharded_standby_replays_promotes_and_ingests(self, tmp_path):
        config = EngineConfig(batch_size=8, flush_interval=0.005)
        manager = EngineManager(
            StrCluParams(epsilon=0.3, mu=2, rho=0.0),
            default_engine_config=config,
            data_root=tmp_path / "primary",
            create_default=False,
        )
        manager.create("w", shards=3)
        engine = manager.get("w")
        import random

        rng = random.Random(11)
        present = set()
        stream = []
        while len(stream) < 150:
            u, v = rng.randrange(30), rng.randrange(30)
            if u == v:
                continue
            edge = (min(u, v), max(u, v))
            if edge in present:
                present.discard(edge)
                stream.append(Update.delete(*edge))
            else:
                present.add(edge)
                stream.append(Update.insert(*edge))
        for update in stream:
            engine.submit(update)
        engine.flush()
        with BackgroundServer(manager) as server:
            standby = make_standby(server, tmp_path, tenant="w", config=config)
            standby.start()
            try:
                assert standby.num_shards == 3
                targets = [shard.applied for shard in engine.shards]
                assert wait_until(
                    lambda: all(
                        standby.position(i) >= targets[i] for i in range(3)
                    )
                )
                # positions advance per shard batch while the shipper is
                # still folding the chunk's logical count in — wait for
                # the deduped applied counter to converge too
                assert wait_until(lambda: standby.applied == engine.applied)
                universe = range(30)
                assert groups_of(standby, universe) == groups_of(engine, universe)
                info = standby.promote()
                assert info["promoted"] and info["epoch"] == 1
                assert all(shard.fenced for shard in engine.shards)
                # post-promotion ingest goes through the re-armed router,
                # including correct no-op filtering on the rebuilt edge set
                before = standby.applied
                existing = next(iter(present))
                standby.submit(Update.insert(*existing))  # no-op
                standby.submit(Update.insert(40, 41))
                standby.flush()
                assert standby.applied == before + 1
            finally:
                standby.close()
        manager.close()


class TestManagerIntegration:
    def test_create_standby_tenant_over_http_and_promote(self, primary):
        manager, server, client, tmp = primary
        engine = manager.get("t")
        replica_manager = EngineManager(
            PARAMS,
            default_engine_config=FAST,
            data_root=tmp / "replica-root",
            create_default=False,
        )
        with BackgroundServer(replica_manager) as replica_server:
            admin = ServiceClient("127.0.0.1", replica_server.port, tenant="t")
            row = admin.create_tenant(replica_of=f"127.0.0.1:{server.port}")
            assert row["replica_of"] == f"127.0.0.1:{server.port}"
            assert row["promoted"] is False
            assert row["durable"] is True
            standby = replica_manager.get("t")
            assert wait_until(lambda: standby.applied >= engine.applied)
            # writes against the standby's v1 route are shed as 409
            with pytest.raises(ServiceError) as excinfo:
                admin.submit_updates([Update.insert(1, 2)])
            assert excinfo.value.status == 409
            assert excinfo.value.code == "tenant_read_only"
            # standby stats + healthz replication blocks
            block = admin.stats()["replication"]
            assert block["role"] == "standby"
            assert block["replica_of"] == f"127.0.0.1:{server.port}"
            health = admin.healthz()
            assert health["replication"]["standbys"] == 1
            assert "t" in health["replication"]["lag"]
            # promote over HTTP, then writes succeed
            document = admin.promote_tenant()
            assert document["tenant"] == "t" and document["promoted"] is True
            assert admin.submit_updates(chain(300, 3)) == 3
            assert admin.healthz()["replication"]["standbys"] == 0
            # the promoted survivor is a full primary: it serves the WAL
            # route, so a fresh standby can chain off the new topology
            assert wait_until(
                lambda: admin.stats()["applied"] >= engine.applied + 3
            )
            served = admin.fetch_wal(0, max_records=4)
            assert len(served["records"]) == 4
            assert served["epoch"] == document["epoch"]
            admin.close()
        replica_manager.close()

    def test_standby_creation_errors_are_clean_409s(self, primary, tmp_path):
        _manager, server, _client, _tmp = primary
        replica_manager = EngineManager(
            PARAMS,
            default_engine_config=FAST,
            data_root=tmp_path / "replica-root",
            create_default=False,
        )
        with BackgroundServer(replica_manager) as replica_server:
            admin = ServiceClient("127.0.0.1", replica_server.port)
            # unknown tenant on the primary
            with pytest.raises(ServiceError) as excinfo:
                admin.create_tenant("ghost", replica_of=f"127.0.0.1:{server.port}")
            assert excinfo.value.status == 409
            assert excinfo.value.code == "primary_rejected"
            # unreachable primary
            with pytest.raises(ServiceError) as excinfo:
                admin.create_tenant("t", replica_of="127.0.0.1:1")
            assert excinfo.value.status == 409
            assert excinfo.value.code == "primary_unreachable"
            # replica_of combined with an explicit shape is a 400
            with pytest.raises(ServiceError) as excinfo:
                admin.create_tenant(
                    "t", replica_of=f"127.0.0.1:{server.port}", shards=2
                )
            assert excinfo.value.status == 400
            assert "ghost" not in replica_manager
            assert "t" not in replica_manager
            admin.close()
        replica_manager.close()

    def test_standby_requires_a_data_root(self, primary):
        _manager, server, _client, _tmp = primary
        manager = EngineManager(PARAMS, create_default=False)
        with pytest.raises(ValueError):
            manager.create("t", replica_of=f"127.0.0.1:{server.port}")
        manager.close()


def _raw_get(client: ServiceClient, path: str):
    return client._request("GET", path)


def _raise_oserror(*_args, **_kwargs):
    raise OSError("primary died mid-re-seed")
