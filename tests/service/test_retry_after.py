"""Tests for 429 Retry-After semantics and client-side retry honouring.

The 429 body carries the precise ``retry_after_ms`` hint; the
``Retry-After`` header is its integer-second ceiling with ``0`` allowed
(no fabricated 1 s stall when the body says "retry almost immediately").
Clients honour whichever of the two is smaller.
"""

from __future__ import annotations

import pytest

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.service.client import BackpressureError, ServiceClient
from repro.service.engine import ClusteringEngine, EngineConfig
from repro.service.server import BackgroundServer, retry_after_header
from repro.service.sharding import ShardedEngine

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)


class TestRetryAfterHeader:
    def test_zero_is_allowed(self):
        assert retry_after_header(0) == "0"

    def test_sub_second_rounds_up_not_down(self):
        # the header can only speak whole seconds; ceiling means a
        # header-only client never retries before the body's suggestion
        assert retry_after_header(1) == "1"
        assert retry_after_header(500) == "1"

    def test_whole_and_fractional_seconds(self):
        assert retry_after_header(1000) == "1"
        assert retry_after_header(1500) == "2"
        assert retry_after_header(30_000) == "30"

    def test_negative_clamps_to_zero(self):
        assert retry_after_header(-5) == "0"


class TestBackpressureErrorRetryAfter:
    def test_prefers_the_smaller_of_body_and_header(self):
        exc = BackpressureError(
            429, {"retry_after_ms": 500}, {"retry-after": "1"}
        )
        assert exc.retry_after_s == pytest.approx(0.5)

    def test_header_wins_when_smaller(self):
        exc = BackpressureError(
            429, {"retry_after_ms": 3000}, {"retry-after": "1"}
        )
        assert exc.retry_after_s == pytest.approx(1.0)

    def test_header_zero_means_immediate(self):
        exc = BackpressureError(429, {"retry_after_ms": 0}, {"retry-after": "0"})
        assert exc.retry_after_s == 0.0

    def test_missing_hints_mean_immediate(self):
        assert BackpressureError(429, {}).retry_after_s == 0.0

    def test_malformed_header_is_ignored(self):
        exc = BackpressureError(
            429, {"retry_after_ms": 250}, {"retry-after": "soon"}
        )
        assert exc.retry_after_s == pytest.approx(0.25)


class TestServerHeaderAgreesWithBody:
    def test_429_header_is_ceiling_of_body_ms(self):
        # a never-started engine cannot drain its queue: the batch overflows
        engine = ClusteringEngine(PARAMS, config=EngineConfig(queue_capacity=4))
        try:
            with BackgroundServer(engine) as background:
                client = ServiceClient("127.0.0.1", background.port)
                with pytest.raises(BackpressureError) as excinfo:
                    client.submit_updates(
                        [Update.insert(i, i + 1) for i in range(10, 20)]
                    )
                exc = excinfo.value
                header = int(exc.headers["retry-after"])
                assert header == -(-exc.retry_after_ms // 1000)  # ceil
                # the client-facing hint is never larger than either source
                assert exc.retry_after_s <= exc.retry_after_ms / 1000.0
                assert exc.retry_after_s <= header
                client.close()
        finally:
            engine.close(checkpoint=False)


class TestClientRetries:
    def test_default_does_not_retry(self):
        engine = ClusteringEngine(PARAMS, config=EngineConfig(queue_capacity=2))
        try:
            with BackgroundServer(engine) as background:
                client = ServiceClient("127.0.0.1", background.port)
                with pytest.raises(BackpressureError):
                    client.submit_updates(
                        [Update.insert(i, i + 1) for i in range(10, 20)]
                    )
                client.close()
        finally:
            engine.close(checkpoint=False)

    def test_retry_resubmits_the_unaccepted_suffix(self, monkeypatch):
        engine = ClusteringEngine(
            PARAMS, config=EngineConfig(queue_capacity=4, flush_interval=0.01)
        )
        sleeps = []

        def fake_sleep(seconds):
            # the retry wait: start the engine so the queue drains and the
            # resubmitted suffix is accepted
            sleeps.append(seconds)
            engine.start()
            engine.flush(timeout=10)

        monkeypatch.setattr("repro.service.client.time.sleep", fake_sleep)
        try:
            with BackgroundServer(engine) as background:
                client = ServiceClient("127.0.0.1", background.port)
                updates = [Update.insert(i, i + 1) for i in range(10, 20)]
                accepted = client.submit_updates(updates, max_retries=3)
                assert accepted == len(updates)
                assert len(sleeps) >= 1
                # the wait honoured the server's hint, not a fabricated 1 s
                assert all(s <= 30.0 for s in sleeps)
                engine.flush(timeout=10)
                assert engine.applied == len(updates)
                client.close()
        finally:
            engine.close(checkpoint=False)

    def test_retries_exhausted_raises_last_backpressure(self, monkeypatch):
        engine = ClusteringEngine(PARAMS, config=EngineConfig(queue_capacity=2))
        monkeypatch.setattr("repro.service.client.time.sleep", lambda s: None)
        try:
            with BackgroundServer(engine) as background:
                client = ServiceClient("127.0.0.1", background.port)
                with pytest.raises(BackpressureError) as excinfo:
                    client.submit_updates(
                        [Update.insert(i, i + 1) for i in range(10, 20)],
                        max_retries=2,
                    )
                exc = excinfo.value
                # the never-started engine accepted the first 2, then shed
                # everything: the last attempt saw 0, but the cumulative
                # count across attempts is preserved
                assert exc.accepted == 0
                assert exc.total_accepted == 2
                client.close()
        finally:
            engine.close(checkpoint=False)

    def test_total_accepted_defaults_to_accepted(self):
        exc = BackpressureError(429, {"accepted": 5})
        assert exc.total_accepted == 5


class TestShardedBackpressure:
    """The sharded engine's merged load-shedding contract.

    A partially accepted submit must report the *exact* accepted prefix
    (the router queue is the single admission point — no update is ever
    half-replicated), and the merged ``retry_after_ms`` is the max over
    the per-shard signals: the slowest shard gates the retry.
    """

    def test_partial_accept_reports_exact_prefix_and_merged_hint(self):
        # a never-started sharded engine: the router queue (capacity 6) is
        # the precise admission boundary
        engine = ShardedEngine(
            PARAMS, config=EngineConfig(shards=3, queue_capacity=6)
        )
        try:
            updates = [Update.insert(i, i + 1) for i in range(15)]
            accepted = engine.submit_many(updates, block=False)
            assert accepted == 6
            signal = engine.backpressure_signal()
            per_shard = [
                shard.backpressure_signal().retry_after_ms
                for shard in engine.shards
            ]
            assert signal.retry_after_ms >= max(per_shard)
            # capacity reports the whole pipeline bound: router + 3 shards
            assert signal.queue_capacity == engine.total_queue_capacity == 24
        finally:
            engine.close(checkpoint=False)

    def test_merged_retry_after_tracks_the_slowest_shard(self):
        engine = ShardedEngine(
            PARAMS,
            config=EngineConfig(shards=2, queue_capacity=128, batch_size=4),
        )
        try:
            slow = engine.shards[0]
            for i in range(128):
                slow.submit(Update.insert(i, i + 1), block=False)
            per_shard = [
                shard.backpressure_signal().retry_after_ms
                for shard in engine.shards
            ]
            assert engine.backpressure_signal().retry_after_ms == max(per_shard)
        finally:
            engine.close(checkpoint=False)

    def test_http_429_carries_the_merged_hint(self):
        engine = ShardedEngine(
            PARAMS, config=EngineConfig(shards=2, queue_capacity=4)
        )
        try:
            with BackgroundServer(engine) as background:
                client = ServiceClient("127.0.0.1", background.port)
                with pytest.raises(BackpressureError) as excinfo:
                    client.submit_updates(
                        [Update.insert(i, i + 1) for i in range(10, 30)]
                    )
                exc = excinfo.value
                assert exc.accepted == 4  # the exact admitted prefix
                assert exc.retry_after_ms >= 1
                header = int(exc.headers["retry-after"])
                assert header == -(-exc.retry_after_ms // 1000)  # ceil
                client.close()
        finally:
            engine.close(checkpoint=False)
