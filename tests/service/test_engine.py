"""Engine tests: batching, backpressure, durability and crash recovery."""

from __future__ import annotations

import pytest

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.core.result import clusterings_equal
from repro.graph.generators import planted_partition_graph
from repro.service.engine import (
    ClusteringEngine,
    EngineBackpressure,
    EngineClosed,
    EngineConfig,
)
from repro.workloads.updates import generate_update_sequence

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)

TRIANGLES = [
    Update.insert(1, 2),
    Update.insert(2, 3),
    Update.insert(1, 3),
    Update.insert(4, 5),
    Update.insert(5, 6),
    Update.insert(4, 6),
]


def _workload_stream(num_updates=60, seed=5):
    edges = planted_partition_graph(2, 8, 0.8, 0.1, seed=3)
    workload = generate_update_sequence(16, edges, num_updates, eta=0.3, seed=seed)
    return list(workload.all_updates())


def _sequential(stream):
    algo = DynStrClu(PARAMS)
    for update in stream:
        algo.apply(update)
    return algo


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(batch_size=0)
        with pytest.raises(ValueError):
            EngineConfig(flush_interval=0.0)
        with pytest.raises(ValueError):
            EngineConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            EngineConfig(checkpoint_every=-1)

    def test_requires_params_or_snapshot(self):
        with pytest.raises(ValueError):
            ClusteringEngine()


class TestIngest:
    def test_micro_batching_matches_sequential(self):
        stream = _workload_stream()
        config = EngineConfig(batch_size=7, flush_interval=0.01)
        with ClusteringEngine(PARAMS, config=config) as engine:
            for update in stream:
                engine.submit(update)
            assert engine.flush(timeout=30)
            view = engine.view()
        assert view.version == len(stream)
        assert clusterings_equal(view.clustering, _sequential(stream).clustering())

    def test_flush_covers_prior_submissions(self):
        with ClusteringEngine(PARAMS, config=EngineConfig(batch_size=100)) as engine:
            for update in TRIANGLES:
                engine.submit(update)
            assert engine.flush(timeout=10)
            assert engine.applied == len(TRIANGLES)
            assert engine.view().version == len(TRIANGLES)

    def test_noop_updates_rejected_not_applied(self):
        with ClusteringEngine(PARAMS) as engine:
            engine.submit(Update.insert(1, 2))
            engine.submit(Update.insert(1, 2))  # duplicate
            engine.submit(Update.delete(8, 9))  # absent edge
            engine.submit(Update.insert(3, 3))  # self loop
            engine.flush(timeout=10)
            assert engine.applied == 1
            assert engine.metrics.get("updates_rejected") == 3

    def test_backpressure_when_queue_full(self):
        config = EngineConfig(queue_capacity=4)
        engine = ClusteringEngine(PARAMS, config=config)  # writer never started
        try:
            for update in TRIANGLES[:4]:
                engine.submit(update, block=False)
            with pytest.raises(EngineBackpressure):
                engine.submit(TRIANGLES[4], block=False)
            assert engine.metrics.get("backpressure") == 1
            assert engine.submit_many(TRIANGLES, block=False) == 0
        finally:
            engine.close(checkpoint=False)

    def test_submit_after_close_raises(self):
        engine = ClusteringEngine(PARAMS).start()
        engine.close()
        with pytest.raises(EngineClosed):
            engine.submit(Update.insert(1, 2))

    def test_close_is_idempotent(self):
        engine = ClusteringEngine(PARAMS).start()
        engine.close()
        engine.close()
        assert not engine.running


class TestWriterFailure:
    def test_flush_raises_instead_of_deadlocking(self):
        from repro.service.engine import EngineError

        engine = ClusteringEngine(PARAMS).start()
        try:
            def _boom(update):
                raise RuntimeError("injected maintainer failure")

            engine.maintainer.apply = _boom
            engine.submit(Update.insert(1, 2))
            with pytest.raises(EngineError):
                engine.flush(timeout=10)
        finally:
            engine.close(checkpoint=False)


class TestVertexCanonicalisation:
    def test_numeric_strings_are_distinct_vertices(self):
        """Lossless IDs: "1" (string) and 1 (int) name different vertices."""
        with ClusteringEngine(PARAMS) as engine:
            engine.submit(Update.insert("1", "2"))
            engine.submit(Update.insert("2", "3"))
            engine.submit(Update.insert("1", "3"))
            engine.submit(Update.insert(1, 2))
            engine.flush(timeout=10)
            assert engine.applied == 4
            # the string triangle clusters; the int edge is separate noise
            assert engine.cluster_of("1") != ()
            assert engine.cluster_of(1) == ()
            groups = engine.view().group_by(["1", "2", "3", 1, 2]).as_sets()
            assert {frozenset(g) for g in groups} == {frozenset({"1", "2", "3"})}

    def test_invalid_vertex_identifiers_rejected_on_submit(self):
        with ClusteringEngine(PARAMS) as engine:
            for bad in (True, None, 1.5, "", "a b"):
                with pytest.raises(ValueError):
                    engine.submit(Update.insert(bad, 7))

    def test_numeric_string_vertices_survive_crash_recovery(self, tmp_path):
        """The WAL's escaped tokens keep "1" ≠ 1 across crash recovery."""
        config = EngineConfig(batch_size=2, flush_interval=0.01)
        engine = ClusteringEngine(PARAMS, config=config, data_dir=tmp_path).start()
        engine.submit(Update.insert("1", "2"))
        engine.submit(Update.insert("2", "3"))
        engine.submit(Update.insert("1", "3"))
        engine.submit(Update.insert(1, 2))
        engine.flush(timeout=10)
        before = engine.view().clustering
        engine.kill()

        recovered = ClusteringEngine(PARAMS, config=config, data_dir=tmp_path)
        try:
            assert clusterings_equal(recovered.view().clustering, before)
            assert recovered.view().cluster_of("1") != ()
            assert recovered.view().cluster_of(1) == ()
            assert 1 in recovered.maintainer.graph.vertices()
            assert "1" in recovered.maintainer.graph.vertices()
        finally:
            recovered.close(checkpoint=False)


class TestRecovery:
    def test_clean_restart_serves_identical_results(self, tmp_path):
        stream = _workload_stream()
        config = EngineConfig(batch_size=8, flush_interval=0.01)
        with ClusteringEngine(PARAMS, config=config, data_dir=tmp_path) as engine:
            for update in stream:
                engine.submit(update)
            engine.flush(timeout=30)
            expected = engine.view().clustering
            applied = engine.applied

        with ClusteringEngine(PARAMS, config=config, data_dir=tmp_path) as restarted:
            assert restarted.applied == applied
            assert clusterings_equal(restarted.view().clustering, expected)

    def test_crash_recovery_from_snapshot_plus_wal(self, tmp_path):
        stream = _workload_stream(num_updates=80)
        config = EngineConfig(batch_size=7, flush_interval=0.01, checkpoint_every=25)
        engine = ClusteringEngine(PARAMS, config=config, data_dir=tmp_path).start()
        for update in stream:
            engine.submit(update)
        engine.flush(timeout=30)
        expected = engine.view().clustering
        applied = engine.applied
        engine.kill()  # no final checkpoint, no clean WAL close

        recovered = ClusteringEngine(PARAMS, config=config, data_dir=tmp_path)
        try:
            # some updates come from the snapshot, the tail from the WAL
            assert recovered.recovered_updates > 0
            assert recovered.applied == applied
            assert clusterings_equal(recovered.view().clustering, expected)
            query = sorted(
                recovered.maintainer.graph.vertices(), key=repr
            )
            live = _sequential(stream)
            assert {frozenset(g) for g in recovered.view().group_by(query).as_sets()} == {
                frozenset(g) for g in live.group_by(query).as_sets()
            }
        finally:
            recovered.close(checkpoint=False)

    def test_recovery_tolerates_torn_wal_tail(self, tmp_path):
        stream = _workload_stream()
        config = EngineConfig(batch_size=8, flush_interval=0.01)
        engine = ClusteringEngine(PARAMS, config=config, data_dir=tmp_path).start()
        for update in stream:
            engine.submit(update)
        engine.flush(timeout=30)
        expected = engine.view().clustering
        applied = engine.applied
        engine.kill()

        with (tmp_path / "wal.log").open("a", encoding="utf-8") as handle:
            handle.write("+ 99")  # a torn append: no trailing newline

        recovered = ClusteringEngine(PARAMS, config=config, data_dir=tmp_path)
        try:
            assert recovered.applied == applied
            assert clusterings_equal(recovered.view().clustering, expected)
        finally:
            recovered.close(checkpoint=False)

    def test_param_mismatch_on_recovery_warns(self, tmp_path):
        with ClusteringEngine(PARAMS, data_dir=tmp_path) as engine:
            engine.submit(Update.insert(1, 2))
            engine.flush(timeout=10)

        other = StrCluParams(epsilon=0.9, mu=4, rho=0.0)
        with pytest.warns(UserWarning, match="ignoring the requested"):
            recovered = ClusteringEngine(other, data_dir=tmp_path)
        try:
            # the snapshot's params win: they produced the persisted labels
            assert recovered.maintainer.params == PARAMS
        finally:
            recovered.close(checkpoint=False)

    def test_restart_can_continue_ingesting(self, tmp_path):
        config = EngineConfig(batch_size=4, flush_interval=0.01)
        with ClusteringEngine(PARAMS, config=config, data_dir=tmp_path) as engine:
            for update in TRIANGLES[:3]:
                engine.submit(update)
            engine.flush(timeout=10)

        with ClusteringEngine(PARAMS, config=config, data_dir=tmp_path) as engine:
            for update in TRIANGLES[3:]:
                engine.submit(update)
            engine.flush(timeout=10)
            assert engine.applied == len(TRIANGLES)
            sequential = _sequential(TRIANGLES)
            assert clusterings_equal(
                engine.view().clustering, sequential.clustering()
            )


class TestFailedFinalCheckpoint:
    def test_close_reopens_the_writer_when_the_checkpoint_fails(
        self, tmp_path, monkeypatch
    ):
        """A failed final checkpoint must not latch the engine closed:
        the writer reopens, ingest keeps working, and a retried close
        really re-attempts (and completes) the checkpoint."""
        engine = ClusteringEngine(
            PARAMS,
            config=EngineConfig(batch_size=8, flush_interval=0.005),
            data_dir=tmp_path,
        ).start()
        for update in TRIANGLES:
            engine.submit(update)
        engine.flush(timeout=10)

        import repro.service.engine as engine_module

        def boom(algo):
            raise OSError("disk full")

        monkeypatch.setattr(engine_module, "take_snapshot", boom)
        with pytest.raises(OSError, match="disk full"):
            engine.close()
        # the engine is NOT closed: ingestion still works end to end
        assert engine.running
        engine.submit(Update.insert(7, 8))
        assert engine.flush(timeout=10)
        assert engine.applied == len(TRIANGLES) + 1

        monkeypatch.undo()
        engine.close()  # the retry cuts the real final checkpoint
        assert not engine.running
        assert (tmp_path / "snapshot.json").exists()

        recovered = ClusteringEngine(PARAMS, data_dir=tmp_path)
        assert recovered.applied == len(TRIANGLES) + 1
        recovered.close(checkpoint=False)


class TestCloseRaceWindow:
    def test_update_enqueued_behind_the_stop_marker_is_applied(self):
        """A submit that passed the closed check just before close() must
        not be acknowledged-then-lost: the writer drains past _Stop."""
        from repro.service.engine import _Stop

        engine = ClusteringEngine(
            PARAMS, config=EngineConfig(batch_size=8, flush_interval=0.005)
        ).start()
        for update in TRIANGLES[:3]:
            engine.submit(update)
        engine.flush(timeout=10)
        engine._queue.put(_Stop())
        engine._queue.put(Update.insert(7, 8))  # the racing submit
        engine.close(checkpoint=False)
        assert engine.applied == 4
        assert engine.view().version == 4
