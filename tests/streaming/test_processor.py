"""Unit tests for the stream processor (snapshots, listeners, WAL, checkpoints)."""

from __future__ import annotations

import pytest

from repro.analysis.tracking import ClusterEventKind
from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.persistence.snapshot import load_snapshot, restore_dynstrclu
from repro.persistence.updatelog import UpdateLogReader, replay_updates
from repro.streaming.processor import StreamProcessor

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)

TRIANGLE_STREAM = [
    Update.insert(1, 2),
    Update.insert(2, 3),
    Update.insert(1, 3),
    Update.insert(4, 5),
    Update.insert(5, 6),
    Update.insert(4, 6),
]


class TestConstruction:
    def test_requires_params_or_maintainer(self):
        with pytest.raises(ValueError):
            StreamProcessor()

    def test_accepts_prebuilt_maintainer(self):
        maintainer = DynStrClu(PARAMS)
        processor = StreamProcessor(maintainer=maintainer, snapshot_every=1)
        processor.process([Update.insert(1, 2)])
        assert maintainer.graph.num_edges == 1

    def test_invalid_intervals(self):
        with pytest.raises(ValueError):
            StreamProcessor(PARAMS, snapshot_every=0)
        with pytest.raises(ValueError):
            StreamProcessor(PARAMS, checkpoint_every=0)


class TestSnapshotsAndListeners:
    def test_snapshot_cadence(self):
        processor = StreamProcessor(PARAMS, snapshot_every=2)
        report = processor.process(TRIANGLE_STREAM)
        assert report.updates_applied == 6
        assert report.snapshots_taken == 3
        assert report.final_clustering.num_clusters == 2

    def test_listener_receives_snapshots(self):
        calls = []
        processor = StreamProcessor(PARAMS, snapshot_every=3)
        processor.add_listener(lambda step, clustering, events: calls.append(step))
        processor.process(TRIANGLE_STREAM)
        assert calls == [3, 6]

    def test_listener_object_with_on_snapshot(self):
        class Recorder:
            def __init__(self):
                self.clusters_seen = []

            def on_snapshot(self, step, clustering, events):
                self.clusters_seen.append(clustering.num_clusters)

        recorder = Recorder()
        processor = StreamProcessor(PARAMS, snapshot_every=3)
        processor.add_listener(recorder)
        processor.process(TRIANGLE_STREAM)
        assert recorder.clusters_seen == [1, 2]

    def test_born_events_reported(self):
        processor = StreamProcessor(PARAMS, snapshot_every=3)
        report = processor.process(TRIANGLE_STREAM)
        born = report.events_of_kind(ClusterEventKind.BORN)
        assert len(born) == 1  # the second triangle appears in the second snapshot

    def test_apply_returns_events_only_on_snapshot(self):
        processor = StreamProcessor(PARAMS, snapshot_every=2)
        assert processor.apply(Update.insert(1, 2)) is None
        events = processor.apply(Update.insert(2, 3))
        assert events == []  # first snapshot has no previous clustering to diff


class TestClose:
    def test_close_is_idempotent_without_wal(self):
        processor = StreamProcessor(PARAMS)
        assert not processor.closed
        processor.close()
        processor.close()
        assert processor.closed

    def test_close_is_idempotent_with_wal(self, tmp_path):
        wal = tmp_path / "stream.log"
        processor = StreamProcessor(PARAMS, wal_path=wal)
        processor.process(TRIANGLE_STREAM[:2])
        processor.close()
        processor.close()  # second close must be a harmless no-op
        assert processor.closed
        assert UpdateLogReader(wal).read_all() == TRIANGLE_STREAM[:2]

    def test_context_manager_after_explicit_close(self, tmp_path):
        wal = tmp_path / "stream.log"
        with StreamProcessor(PARAMS, wal_path=wal) as processor:
            processor.process(TRIANGLE_STREAM)
            processor.close()  # __exit__ will close again: must not raise

    def test_checkpoint_leaves_wal_synced_and_parseable(self, tmp_path):
        wal = tmp_path / "stream.log"
        checkpoint = tmp_path / "checkpoint.json"
        processor = StreamProcessor(
            PARAMS,
            snapshot_every=10,
            wal_path=wal,
            checkpoint_path=checkpoint,
            checkpoint_every=3,
        )
        processor.process(TRIANGLE_STREAM)
        # WAL is durable at the checkpoint even though close() never ran:
        # every entry written so far must parse back without a torn tail
        assert UpdateLogReader(wal).read_all() == TRIANGLE_STREAM
        processor.close()

    def test_backend_selection_by_name(self):
        processor = StreamProcessor(PARAMS, backend="pscan")
        report = processor.process(TRIANGLE_STREAM)
        assert report.updates_applied == len(TRIANGLE_STREAM)
        assert processor.maintainer.updates_processed == len(TRIANGLE_STREAM)

    def test_dynelm_backend_supports_checkpoints(self, tmp_path):
        checkpoint = tmp_path / "checkpoint.json"
        processor = StreamProcessor(
            PARAMS, backend="dynelm", checkpoint_path=checkpoint, checkpoint_every=2
        )
        processor.process(TRIANGLE_STREAM)
        assert processor.checkpoints_written >= 1
        assert checkpoint.exists()
        processor.close()

    def test_non_snapshot_backend_rejects_checkpoint_path(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot-capable"):
            StreamProcessor(
                PARAMS, backend="pscan", checkpoint_path=tmp_path / "c.json"
            )


class TestPersistenceIntegration:
    def test_wal_records_every_update(self, tmp_path):
        wal = tmp_path / "stream.log"
        with StreamProcessor(PARAMS, snapshot_every=10, wal_path=wal) as processor:
            processor.process(TRIANGLE_STREAM)
        assert UpdateLogReader(wal).read_all() == TRIANGLE_STREAM

    def test_checkpoint_plus_wal_recovers_state(self, tmp_path):
        wal = tmp_path / "stream.log"
        checkpoint = tmp_path / "checkpoint.json"
        with StreamProcessor(
            PARAMS,
            snapshot_every=10,
            wal_path=wal,
            checkpoint_path=checkpoint,
            checkpoint_every=4,
        ) as processor:
            report = processor.process(TRIANGLE_STREAM)
            assert processor.checkpoints_written == 1

        recovered = restore_dynstrclu(load_snapshot(checkpoint))
        replay_updates(recovered, UpdateLogReader(wal), skip=4)
        assert (
            recovered.clustering().as_frozen()
            == report.final_clustering.as_frozen()
        )
