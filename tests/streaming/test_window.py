"""Unit tests for sliding-window structural clustering."""

from __future__ import annotations

import pytest

from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.streaming.window import SlidingWindowClustering, TimedEdge

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)


class TestBasics:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SlidingWindowClustering(PARAMS, window=0)

    def test_observe_inserts_edges(self):
        swc = SlidingWindowClustering(PARAMS, window=10)
        swc.observe(1, 2, time=0.0)
        swc.observe(2, 3, time=1.0)
        assert swc.num_live_edges == 2
        assert swc.maintainer.graph.has_edge(1, 2)
        assert swc.last_seen(1, 2) == 0.0

    def test_observe_event_dataclass(self):
        swc = SlidingWindowClustering(PARAMS, window=10)
        event = TimedEdge(4, 5, time=2.0)
        swc.observe_event(event)
        assert event.edge == (4, 5)
        assert swc.num_live_edges == 1

    def test_time_must_be_non_decreasing(self):
        swc = SlidingWindowClustering(PARAMS, window=10)
        swc.observe(1, 2, time=5.0)
        with pytest.raises(ValueError):
            swc.observe(2, 3, time=4.0)
        with pytest.raises(ValueError):
            swc.advance_to(1.0)


class TestExpiry:
    def test_edges_expire_after_window(self):
        swc = SlidingWindowClustering(PARAMS, window=10)
        swc.observe(1, 2, time=0.0)
        swc.observe(2, 3, time=5.0)
        expired = swc.advance_to(11.0)
        assert expired == 1
        assert not swc.maintainer.graph.has_edge(1, 2)
        assert swc.maintainer.graph.has_edge(2, 3)
        assert swc.num_live_edges == 1
        assert swc.expired_edges == 1

    def test_refresh_extends_lifetime(self):
        swc = SlidingWindowClustering(PARAMS, window=10)
        swc.observe(1, 2, time=0.0)
        swc.observe(1, 2, time=8.0)  # refresh, no duplicate insertion
        assert swc.num_live_edges == 1
        assert swc.advance_to(12.0) == 0  # original timestamp is stale
        assert swc.maintainer.graph.has_edge(1, 2)
        assert swc.advance_to(19.0) == 1
        assert not swc.maintainer.graph.has_edge(1, 2)

    def test_expiry_happens_on_observe_too(self):
        swc = SlidingWindowClustering(PARAMS, window=5)
        swc.observe(1, 2, time=0.0)
        expired = swc.observe(3, 4, time=50.0)
        assert expired == 1
        assert swc.live_edges() == [(3, 4)]

    def test_everything_expires(self):
        swc = SlidingWindowClustering(PARAMS, window=1)
        for t, (u, v) in enumerate([(1, 2), (2, 3), (1, 3)]):
            swc.observe(u, v, time=float(10 * t))
        assert swc.num_live_edges == 1
        swc.advance_to(100.0)
        assert swc.num_live_edges == 0
        assert swc.maintainer.graph.num_edges == 0


class TestClusteringView:
    def _triangle_events(self, base_time: float):
        return [
            TimedEdge(1, 2, base_time),
            TimedEdge(2, 3, base_time + 1),
            TimedEdge(1, 3, base_time + 2),
        ]

    def test_clustering_reflects_window_content(self):
        swc = SlidingWindowClustering(PARAMS, window=100)
        for event in self._triangle_events(0.0):
            swc.observe_event(event)
        clustering = swc.clustering()
        assert clustering.num_clusters == 1
        assert {1, 2, 3} in clustering.clusters

    def test_cluster_disappears_after_expiry(self):
        swc = SlidingWindowClustering(PARAMS, window=10)
        for event in self._triangle_events(0.0):
            swc.observe_event(event)
        assert swc.clustering().num_clusters == 1
        swc.advance_to(1000.0)
        assert swc.clustering().num_clusters == 0

    def test_window_equals_recompute_on_live_edges(self):
        """The maintained clustering equals a from-scratch build on the live edges."""
        swc = SlidingWindowClustering(PARAMS, window=30)
        interactions = [
            (1, 2, 0.0), (2, 3, 2.0), (1, 3, 4.0), (3, 4, 10.0),
            (4, 5, 12.0), (5, 6, 14.0), (4, 6, 16.0), (1, 2, 20.0),
            (6, 7, 35.0), (2, 3, 38.0), (7, 8, 40.0), (8, 6, 42.0), (7, 6, 44.0),
        ]
        for u, v, t in interactions:
            swc.observe(u, v, time=t)
        reference = DynStrClu.from_edges(swc.live_edges(), PARAMS)
        assert swc.clustering().as_frozen() == reference.clustering().as_frozen()

    def test_group_by_on_window(self):
        swc = SlidingWindowClustering(PARAMS, window=100)
        for event in self._triangle_events(0.0):
            swc.observe_event(event)
        result = swc.group_by([1, 3])
        assert result.num_groups == 1
        assert result.as_sets() == [{1, 3}]
