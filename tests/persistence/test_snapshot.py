"""Unit tests for state snapshots (take / save / load / restore)."""

from __future__ import annotations

import json

import pytest

from repro.core.config import StrCluParams
from repro.core.dynelm import DynELM
from repro.core.dynstrclu import DynStrClu
from repro.core.labelling import EdgeLabel
from repro.graph.generators import planted_partition_graph
from repro.graph.similarity import SimilarityKind
from repro.persistence.snapshot import (
    SnapshotError,
    StateSnapshot,
    load_snapshot,
    restore_dynelm,
    restore_dynstrclu,
    save_snapshot,
    take_snapshot,
)

EXACT = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
SAMPLED = StrCluParams(epsilon=0.3, mu=3, rho=0.2, seed=5, max_samples=64)


def _build_dynstrclu(params: StrCluParams, edges) -> DynStrClu:
    algo = DynStrClu(params)
    for u, v in edges:
        algo.insert_edge(u, v)
    return algo


TRIANGLES = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (5, 6), (4, 6)]


class TestTakeSnapshot:
    def test_counts(self):
        algo = _build_dynstrclu(EXACT, TRIANGLES)
        snap = take_snapshot(algo)
        assert snap.num_edges == len(TRIANGLES)
        assert snap.num_vertices == 6
        assert snap.updates_processed == len(TRIANGLES)

    def test_labels_view(self):
        algo = _build_dynstrclu(EXACT, TRIANGLES)
        snap = take_snapshot(algo)
        labels = snap.labels()
        assert labels[(1, 2)] is EdgeLabel.SIMILAR
        assert len(labels) == len(TRIANGLES)

    def test_works_on_dynelm_directly(self):
        elm = DynELM.from_edges(TRIANGLES, EXACT)
        snap = take_snapshot(elm)
        assert snap.num_edges == len(TRIANGLES)

    def test_isolated_vertices_are_preserved(self):
        algo = _build_dynstrclu(EXACT, [(1, 2), (2, 3)])
        algo.graph.add_vertex(99)
        snap = take_snapshot(algo)
        assert 99 in snap.vertices


class TestJsonRoundTrip:
    def test_document_round_trip(self):
        algo = _build_dynstrclu(SAMPLED, TRIANGLES)
        snap = take_snapshot(algo)
        restored = StateSnapshot.from_json(snap.to_json())
        assert restored.params == snap.params
        assert restored.vertices == snap.vertices
        assert restored.labelled_edges == snap.labelled_edges

    def test_file_round_trip(self, tmp_path):
        algo = _build_dynstrclu(EXACT, TRIANGLES)
        path = tmp_path / "state.json"
        saved = save_snapshot(algo, path)
        loaded = load_snapshot(path)
        assert loaded.labelled_edges == saved.labelled_edges
        # the file really is JSON
        document = json.loads(path.read_text())
        assert document["format"] == "repro-strclu-snapshot"

    def test_string_vertices_supported(self):
        algo = _build_dynstrclu(EXACT, [("a", "b"), ("b", "c"), ("a", "c")])
        snap = StateSnapshot.from_json(take_snapshot(algo).to_json())
        assert set(snap.vertices) == {"a", "b", "c"}

    def test_rejects_wrong_format(self):
        with pytest.raises(SnapshotError):
            StateSnapshot.from_document({"format": "something-else", "version": 1})

    def test_rejects_wrong_version(self):
        with pytest.raises(SnapshotError):
            StateSnapshot.from_document({"format": "repro-strclu-snapshot", "version": 99})

    def test_rejects_invalid_json(self):
        with pytest.raises(SnapshotError):
            StateSnapshot.from_json("{not json")

    def test_rejects_malformed_edges(self):
        document = {
            "format": "repro-strclu-snapshot",
            "version": 1,
            "params": {
                "epsilon": 0.5, "mu": 2, "rho": 0.0, "delta_star": 0.001,
                "similarity": "jaccard", "seed": 0, "max_samples": None,
            },
            "vertices": [1, 2],
            "edges": [[1]],
        }
        with pytest.raises(SnapshotError):
            StateSnapshot.from_document(document)


class TestRestore:
    def test_restored_dynelm_keeps_labels_verbatim(self):
        elm = DynELM.from_edges(TRIANGLES, SAMPLED)
        snap = take_snapshot(elm)
        restored = restore_dynelm(snap)
        assert restored.labels == elm.labels
        assert restored.graph.num_edges == elm.graph.num_edges
        assert restored.updates_processed == elm.updates_processed

    def test_restored_dynstrclu_reproduces_clustering(self):
        edges = planted_partition_graph(3, 10, 0.8, 0.02, seed=3)
        params = StrCluParams(epsilon=0.4, mu=3, rho=0.0)
        algo = _build_dynstrclu(params, edges)
        restored = restore_dynstrclu(take_snapshot(algo))
        assert restored.clustering().as_frozen() == algo.clustering().as_frozen()
        assert restored.cores == algo.cores

    def test_restored_instance_accepts_further_updates(self):
        algo = _build_dynstrclu(EXACT, TRIANGLES)
        restored = restore_dynstrclu(take_snapshot(algo))
        # both instances process the same extra updates and stay equivalent
        extra = [(2, 4), (1, 4), (6, 1)]
        for u, v in extra:
            algo.insert_edge(u, v)
            restored.insert_edge(u, v)
        algo.delete_edge(3, 4)
        restored.delete_edge(3, 4)
        assert restored.clustering().as_frozen() == algo.clustering().as_frozen()

    def test_restore_under_cosine(self):
        params = StrCluParams(epsilon=0.5, mu=2, rho=0.0, similarity=SimilarityKind.COSINE)
        algo = _build_dynstrclu(params, TRIANGLES)
        restored = restore_dynstrclu(take_snapshot(algo))
        assert restored.params.similarity is SimilarityKind.COSINE
        assert restored.clustering().as_frozen() == algo.clustering().as_frozen()

    def test_restore_respects_connectivity_backend(self):
        algo = _build_dynstrclu(EXACT, TRIANGLES)
        restored = restore_dynstrclu(take_snapshot(algo), connectivity_backend="union_find")
        assert restored.clustering().as_frozen() == algo.clustering().as_frozen()

    def test_group_by_after_restore(self):
        algo = _build_dynstrclu(EXACT, TRIANGLES)
        restored = restore_dynstrclu(take_snapshot(algo))
        query = [1, 2, 4, 6]
        original = sorted(tuple(sorted(g)) for g in algo.group_by(query).as_sets())
        recovered = sorted(tuple(sorted(g)) for g in restored.group_by(query).as_sets())
        assert original == recovered
