"""Unit tests for the append-only update log and replay."""

from __future__ import annotations

import pytest

from repro.core.config import StrCluParams
from repro.core.dynelm import Update, UpdateKind
from repro.core.dynstrclu import DynStrClu
from repro.persistence.snapshot import restore_dynstrclu, take_snapshot
from repro.persistence.updatelog import (
    LOG_HEADER,
    UpdateLogError,
    UpdateLogReader,
    UpdateLogWriter,
    format_update,
    list_wal_segments,
    parse_update_line,
    read_update_log,
    replay_updates,
    segment_entry_count,
    segment_file_name,
    write_update_log,
)

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)

UPDATES = [
    Update.insert(1, 2),
    Update.insert(2, 3),
    Update.insert(1, 3),
    Update.insert(3, 4),
    Update.delete(3, 4),
    Update.insert("alice", "bob"),
]


class TestFormatting:
    def test_format_and_parse_round_trip(self):
        for update in UPDATES:
            parsed = parse_update_line(format_update(update))
            assert parsed == update

    def test_comments_and_blank_lines_skipped(self):
        assert parse_update_line("") is None
        assert parse_update_line("   ") is None
        assert parse_update_line("# a comment") is None

    def test_malformed_lines_raise(self):
        with pytest.raises(UpdateLogError):
            parse_update_line("* 1 2")
        with pytest.raises(UpdateLogError):
            parse_update_line("+ 1")
        with pytest.raises(UpdateLogError):
            parse_update_line("+ 1 2 3")

    def test_whitespace_vertex_rejected(self):
        with pytest.raises(UpdateLogError):
            format_update(Update.insert("a vertex", 2))

    def test_integer_identifiers_parse_back_to_int(self):
        parsed = parse_update_line("+ 10 20")
        assert parsed == Update(UpdateKind.INSERT, 10, 20)
        assert isinstance(parsed.u, int)

    def test_numeric_string_identifiers_round_trip_losslessly(self):
        """Regression: "10" (string) must not come back as the int 10."""
        update = Update.insert("10", "-3")
        line = format_update(update)
        assert line == "+ ~10 ~-3"
        parsed = parse_update_line(line)
        assert parsed == update
        assert isinstance(parsed.u, str) and isinstance(parsed.v, str)
        # and a string vertex starting with the escape char double-escapes
        tilded = Update.insert("~x", 5)
        parsed = parse_update_line(format_update(tilded))
        assert parsed == tilded

    def test_v1_header_log_reads_tokens_verbatim(self, tmp_path):
        """A pre-escape (v1-headered) log must not have '~' stripped."""
        path = tmp_path / "old.log"
        path.write_text(
            "# repro-update-log v1\n+ ~x alice\n+ 1 2\n", encoding="utf-8"
        )
        reader = UpdateLogReader(path)
        assert reader.read_all() == [
            Update.insert("~x", "alice"),
            Update.insert(1, 2),
        ]

    def test_append_to_v1_log_is_refused(self, tmp_path):
        """Splicing v2 (~-escaped) entries into a v1 log would corrupt it."""
        path = tmp_path / "old.log"
        path.write_text("# repro-update-log v1\n+ 1 2\n", encoding="utf-8")
        with pytest.raises(UpdateLogError, match="v1-format"):
            UpdateLogWriter(path, append=True)
        # the log itself is untouched and still readable
        assert UpdateLogReader(path).read_all() == [Update.insert(1, 2)]

    def test_token_codec_round_trips_every_identifier_shape(self):
        from repro.persistence.updatelog import format_vertex_token, parse_vertex_token

        for vertex in (0, 7, -7, "alice", "7", "-7", "~", "~7", "~~x", "s:1"):
            token = format_vertex_token(vertex)
            assert " " not in token
            roundtripped = parse_vertex_token(token)
            assert roundtripped == vertex
            assert type(roundtripped) is type(vertex)


class TestWriterReader:
    def test_write_and_read(self, tmp_path):
        path = tmp_path / "updates.log"
        count = write_update_log(UPDATES, path)
        assert count == len(UPDATES)
        assert read_update_log(path) == UPDATES
        assert path.read_text().splitlines()[0] == LOG_HEADER

    def test_append_mode(self, tmp_path):
        path = tmp_path / "updates.log"
        with UpdateLogWriter(path) as writer:
            writer.append(UPDATES[0])
        with UpdateLogWriter(path, append=True) as writer:
            writer.append(UPDATES[1])
        assert read_update_log(path) == UPDATES[:2]

    def test_write_after_close_raises(self, tmp_path):
        writer = UpdateLogWriter(tmp_path / "updates.log")
        writer.close()
        with pytest.raises(UpdateLogError):
            writer.append(UPDATES[0])

    def test_reader_is_reiterable(self, tmp_path):
        path = tmp_path / "updates.log"
        write_update_log(UPDATES, path)
        reader = UpdateLogReader(path)
        assert list(reader) == list(reader)


class TestDurability:
    def test_sync_flushes_to_disk(self, tmp_path):
        path = tmp_path / "updates.log"
        writer = UpdateLogWriter(path)
        writer.append(UPDATES[0])
        writer.sync()
        assert read_update_log(path) == UPDATES[:1]
        writer.close()

    def test_close_is_idempotent(self, tmp_path):
        writer = UpdateLogWriter(tmp_path / "updates.log")
        writer.append(UPDATES[0])
        writer.close()
        writer.close()
        assert writer.closed
        writer.sync()  # syncing a closed writer is a no-op, not an error

    def test_base_marker_round_trips(self, tmp_path):
        from repro.persistence.updatelog import read_log_base

        path = tmp_path / "updates.log"
        with UpdateLogWriter(path, base=42) as writer:
            writer.append(UPDATES[0])
        assert read_log_base(path) == 42
        assert UpdateLogReader(path).base() == 42
        assert read_update_log(path) == UPDATES[:1]

    def test_base_defaults_to_zero(self, tmp_path):
        path = tmp_path / "updates.log"
        write_update_log(UPDATES[:2], path)
        assert UpdateLogReader(path).base() == 0


class TestTornTail:
    def test_unterminated_tail_dropped_when_tolerated(self, tmp_path):
        path = tmp_path / "updates.log"
        write_update_log(UPDATES[:3], path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("+ 99")  # torn append: no newline
        assert UpdateLogReader(path, tolerate_torn_tail=True).read_all() == UPDATES[:3]

    def test_malformed_tail_dropped_when_tolerated(self, tmp_path):
        path = tmp_path / "updates.log"
        write_update_log(UPDATES[:3], path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("garbage line\n")
        assert UpdateLogReader(path, tolerate_torn_tail=True).read_all() == UPDATES[:3]

    def test_torn_tail_raises_by_default(self, tmp_path):
        path = tmp_path / "updates.log"
        write_update_log(UPDATES[:3], path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("garbage line\n")
        with pytest.raises(UpdateLogError):
            UpdateLogReader(path).read_all()

    def test_mid_file_corruption_always_raises(self, tmp_path):
        path = tmp_path / "updates.log"
        write_update_log(UPDATES[:1], path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("garbage line\n")
            handle.write(format_update(UPDATES[1]) + "\n")
        with pytest.raises(UpdateLogError):
            UpdateLogReader(path, tolerate_torn_tail=True).read_all()

    def test_tolerated_torn_tail_is_reported_not_swallowed(self, tmp_path):
        """Regression: a dropped tail must set ``torn_tail`` on the reader.

        The WAL shipper distinguishes "clean end of segment" from "this
        segment is damaged, re-seed the standby from a snapshot" — a
        silently swallowed tail made that decision impossible.
        """
        path = tmp_path / "updates.log"
        write_update_log(UPDATES[:3], path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("+ 99")  # torn append: no newline
        reader = UpdateLogReader(path, tolerate_torn_tail=True)
        assert reader.read_all() == UPDATES[:3]
        assert reader.torn_tail is True
        assert reader.entries_read == 3

    def test_clean_log_reports_no_torn_tail(self, tmp_path):
        path = tmp_path / "updates.log"
        write_update_log(UPDATES[:3], path)
        reader = UpdateLogReader(path, tolerate_torn_tail=True)
        assert reader.read_all() == UPDATES[:3]
        assert reader.torn_tail is False
        assert reader.entries_read == 3

    def test_torn_flag_resets_between_iterations(self, tmp_path):
        path = tmp_path / "updates.log"
        write_update_log(UPDATES[:2], path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("+ 99")
        reader = UpdateLogReader(path, tolerate_torn_tail=True)
        reader.read_all()
        assert reader.torn_tail is True
        # repair the tail and re-iterate the same reader object
        with path.open("a", encoding="utf-8") as handle:
            handle.write(" 100\n")
        assert reader.read_all() == UPDATES[:2] + [Update.insert(99, 100)]
        assert reader.torn_tail is False


class TestIterFrom:
    def test_skip_jumps_entries_without_parsing(self, tmp_path):
        path = tmp_path / "updates.log"
        write_update_log(UPDATES, path)
        reader = UpdateLogReader(path)
        assert list(reader.iter_from(2)) == UPDATES[2:]
        assert reader.entries_skipped == 2
        assert reader.entries_read == len(UPDATES) - 2

    def test_skip_beyond_the_log_yields_nothing(self, tmp_path):
        path = tmp_path / "updates.log"
        write_update_log(UPDATES[:3], path)
        reader = UpdateLogReader(path)
        assert list(reader.iter_from(10)) == []
        assert reader.entries_skipped == 3  # what was actually there

    def test_torn_tail_detected_even_inside_the_skip_range(self, tmp_path):
        path = tmp_path / "updates.log"
        write_update_log(UPDATES[:2], path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("+ 99")  # torn final line
        reader = UpdateLogReader(path, tolerate_torn_tail=True)
        assert list(reader.iter_from(5)) == []
        assert reader.torn_tail is True

    def test_observed_base_is_set_before_the_first_yield(self, tmp_path):
        """WAL serving verifies mid-iteration that the file it opened is
        the segment it listed, so the marker must be visible by the time
        the first entry comes out."""
        path = tmp_path / "updates.log"
        with UpdateLogWriter(path, base=42) as writer:
            writer.extend(UPDATES[:3])
        reader = UpdateLogReader(path)
        iterator = iter(reader)
        first = next(iterator)
        assert first == UPDATES[0]
        assert reader.observed_base == 42
        list(iterator)
        assert reader.observed_base == 42 == reader.base()

    def test_observed_base_defaults_to_zero_without_a_marker(self, tmp_path):
        path = tmp_path / "updates.log"
        write_update_log(UPDATES[:2], path)
        reader = UpdateLogReader(path)
        list(reader)
        assert reader.observed_base == 0

    def test_observed_base_on_an_empty_rotated_segment(self, tmp_path):
        # the marker is the file's last line: still reported
        path = tmp_path / "updates.log"
        with UpdateLogWriter(path, base=7):
            pass
        reader = UpdateLogReader(path)
        assert list(reader) == []
        assert reader.observed_base == 7


class TestSegments:
    def test_writer_position_is_base_plus_entries(self, tmp_path):
        path = tmp_path / "updates.log"
        with UpdateLogWriter(path, base=7) as writer:
            assert writer.position == 7
            writer.extend(UPDATES[:3])
            assert writer.position == 10

    def test_list_wal_segments_orders_by_base(self, tmp_path):
        write_update_log(UPDATES[:2], tmp_path / segment_file_name(0))
        with UpdateLogWriter(tmp_path / segment_file_name(2), base=2) as writer:
            writer.extend(UPDATES[2:4])
        with UpdateLogWriter(tmp_path / "wal.log", base=4) as writer:
            writer.append(UPDATES[4])
        segments = list_wal_segments(tmp_path, active_name="wal.log")
        assert [segment.base for segment in segments] == [0, 2, 4]
        assert [segment.active for segment in segments] == [False, False, True]
        assert [segment_entry_count(segment) for segment in segments] == [2, 2, 1]

    def test_list_wal_segments_without_active_file(self, tmp_path):
        write_update_log(UPDATES[:2], tmp_path / segment_file_name(0))
        segments = list_wal_segments(tmp_path, active_name="wal.log")
        assert [segment.base for segment in segments] == [0]

    def test_unrelated_files_are_ignored(self, tmp_path):
        (tmp_path / "snapshot.json").write_text("{}", encoding="utf-8")
        (tmp_path / "wal-xyz.log").write_text("junk", encoding="utf-8")
        assert list_wal_segments(tmp_path) == []


class TestReplay:
    def test_replay_into_maintainer(self, tmp_path):
        path = tmp_path / "updates.log"
        updates = [u for u in UPDATES if isinstance(u.u, int)]
        write_update_log(updates, path)
        algo = DynStrClu(PARAMS)
        applied = replay_updates(algo, UpdateLogReader(path))
        assert applied == len(updates)
        assert algo.graph.num_edges == 3  # (3, 4) was inserted then deleted

    def test_replay_with_skip_reconstructs_from_checkpoint(self, tmp_path):
        """snapshot + log suffix == replaying the full log from scratch."""
        log_path = tmp_path / "updates.log"
        updates = [u for u in UPDATES if isinstance(u.u, int)]
        prefix, suffix = updates[:3], updates[3:]

        live = DynStrClu(PARAMS)
        with UpdateLogWriter(log_path) as wal:
            for update in prefix:
                wal.append(update)
                live.apply(update)
            snapshot = take_snapshot(live)
            for update in suffix:
                wal.append(update)
                live.apply(update)

        recovered = restore_dynstrclu(snapshot)
        replay_updates(recovered, UpdateLogReader(log_path), skip=len(prefix))
        assert recovered.clustering().as_frozen() == live.clustering().as_frozen()
        assert recovered.graph.num_edges == live.graph.num_edges

    def test_on_update_callback(self, tmp_path):
        seen = []
        updates = [u for u in UPDATES if isinstance(u.u, int)]
        algo = DynStrClu(PARAMS)
        replay_updates(algo, updates, on_update=lambda i, u: seen.append((i, u.kind)))
        assert len(seen) == len(updates)
        assert seen[0][0] == 0
