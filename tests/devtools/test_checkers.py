"""Per-checker detection tests over positive/negative source fixtures.

Each checker runs directly (``checker.check(load_source(fixture))``) so
these tests pin *detection*: the bad fixture must produce exactly the
expected codes at the expected sites, and the good fixture must be clean.
Suppressions are applied by :func:`repro.devtools.run_checks`, not by the
checkers themselves — so findings here are pre-suppression.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools import (
    AsyncBlockingChecker,
    DurableWriteChecker,
    ErrorEnvelopeChecker,
    GuardedFieldChecker,
    MonotonicDisciplineChecker,
    SpanHygieneChecker,
    ThreadHygieneChecker,
    load_source,
)

FIXTURES = Path(__file__).parent / "fixtures"


def run(checker, fixture: str):
    return checker.check(load_source(FIXTURES / fixture))


def codes(findings):
    return sorted(finding.code for finding in findings)


class TestMonotonicDiscipline:
    def test_bad_fixture_is_detected(self):
        findings = run(MonotonicDisciplineChecker(), "clock_bad.py")
        assert codes(findings) == ["REPRO101"] * 3
        # one of the three is the `from time import time` import itself
        assert any("time" in f.message for f in findings)

    def test_good_fixture_is_clean(self):
        assert run(MonotonicDisciplineChecker(), "clock_good.py") == []

    def test_pinned_names_are_allowed_not_invisible(self):
        from repro.devtools.clocks import wall_clock_references

        source = load_source(FIXTURES / "clock_good.py")
        violations, allowed = wall_clock_references(source)
        assert violations == []
        assert len(allowed) == 2  # published_at assignment + "ts" dict key


class TestGuardedField:
    def test_bad_fixture_is_detected(self):
        findings = run(GuardedFieldChecker(), "guarded_bad.py")
        assert codes(findings) == ["REPRO201"] * 2
        assert all("_lock" in finding.message for finding in findings)
        assert {"increment", "peek"} == {
            finding.message.split(".")[-1].rstrip(")")
            for finding in findings
        }

    def test_good_fixture_is_clean(self):
        assert run(GuardedFieldChecker(), "guarded_good.py") == []


class TestDurableWrite:
    def test_bad_fixture_is_detected(self):
        findings = run(DurableWriteChecker(), "durable_bad.py")
        assert codes(findings) == ["REPRO301"] * 4

    def test_good_fixture_is_clean(self):
        # write_durable itself, append-mode WAL opens and reads: all legal
        assert run(DurableWriteChecker(), "durable_good.py") == []


class TestAsyncBlocking:
    def test_bad_fixture_is_detected(self):
        findings = run(AsyncBlockingChecker(), "async_bad.py")
        assert codes(findings) == ["REPRO401"] * 3
        names = " ".join(finding.message for finding in findings)
        assert "time.sleep" in names and "_dispatch" in names and "open" in names

    def test_good_fixture_is_clean(self):
        # run_in_executor passes the callable by reference: no direct call
        assert run(AsyncBlockingChecker(), "async_good.py") == []


class TestErrorEnvelope:
    def test_bad_fixture_is_detected(self):
        findings = run(ErrorEnvelopeChecker(), "envelope_bad.py")
        assert codes(findings) == ["REPRO501"] * 2

    def test_good_fixture_is_clean(self):
        # project error families, async lifecycle and BackgroundServer
        # raises are all exempt
        assert run(ErrorEnvelopeChecker(), "envelope_good.py") == []


class TestThreadHygiene:
    def test_bad_fixture_is_detected(self):
        findings = run(ThreadHygieneChecker(), "threads_bad.py")
        assert codes(findings) == ["REPRO601", "REPRO601", "REPRO602"]

    def test_good_fixture_is_clean(self):
        assert run(ThreadHygieneChecker(), "threads_good.py") == []


class TestSpanHygiene:
    def test_bad_fixture_is_detected(self):
        findings = run(SpanHygieneChecker(), "spans_bad.py")
        assert codes(findings) == ["REPRO701"] * 3
        assert all("with" in finding.message for finding in findings)

    def test_good_fixture_is_clean(self):
        assert run(SpanHygieneChecker(), "spans_good.py") == []


class TestScoping:
    @pytest.mark.parametrize(
        "checker_class, in_scope, out_of_scope",
        [
            (
                MonotonicDisciplineChecker,
                "src/repro/service/engine.py",
                "src/repro/core/dynstrclu.py",
            ),
            (
                DurableWriteChecker,
                "src/repro/persistence/snapshot.py",
                "src/repro/core/config.py",
            ),
            (
                AsyncBlockingChecker,
                "src/repro/service/server.py",
                "src/repro/service/engine.py",
            ),
            (
                SpanHygieneChecker,
                "src/repro/service/sharding.py",
                "src/repro/devtools/spans.py",
            ),
        ],
    )
    def test_package_files_respect_checker_scope(
        self, checker_class, in_scope, out_of_scope
    ):
        repo = Path(__file__).resolve().parents[2]
        checker = checker_class()
        assert checker.applies_to(load_source(repo / in_scope))
        assert not checker.applies_to(load_source(repo / out_of_scope))

    def test_fixture_files_are_always_in_scope(self):
        # files outside the repro package are checked by every checker,
        # so fixtures exercise scoped checkers without path games
        source = load_source(FIXTURES / "async_bad.py")
        for checker_class in (
            MonotonicDisciplineChecker,
            GuardedFieldChecker,
            DurableWriteChecker,
            AsyncBlockingChecker,
            ErrorEnvelopeChecker,
            ThreadHygieneChecker,
            SpanHygieneChecker,
        ):
            assert checker_class().applies_to(source)
