"""Framework tests: suppressions, selection, JSON output, cache, CLI.

These exercise :mod:`repro.devtools.core` (the machinery shared by every
checker) and the ``repro check`` CLI wiring — everything *around* the
individual checkers, which :mod:`tests.devtools.test_checkers` covers.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools import (
    DurableWriteChecker,
    Finding,
    all_checkers,
    load_source,
    run_checks,
    select_checkers,
)
from repro.devtools.core import iter_python_files

FIXTURES = Path(__file__).parent / "fixtures"


class TestSuppressions:
    def test_suppressed_fixture_produces_no_findings(self):
        report = run_checks([FIXTURES / "suppressed.py"], all_checkers())
        assert report.ok
        assert report.findings == []
        # inline allow[CODE], inline allow[*], and the comment-block form
        assert len(report.suppressed) == 3
        assert {f.code for f in report.suppressed} == {"REPRO301"}

    def test_unsuppressed_fixture_produces_findings(self):
        report = run_checks([FIXTURES / "durable_bad.py"], all_checkers())
        assert not report.ok
        assert [f.code for f in report.findings] == ["REPRO301"] * 4
        assert report.suppressed == []

    def test_suppression_comment_must_name_the_code(self, tmp_path):
        # an allow[] for a *different* code silences nothing
        bad = tmp_path / "wrong_code.py"
        bad.write_text(
            "import os\n"
            "\n"
            "def rotate(path):\n"
            "    # repro: allow[REPRO101] wrong code entirely\n"
            "    os.rename(path, path)\n",
            encoding="utf-8",
        )
        report = run_checks([bad], [DurableWriteChecker()])
        assert [f.code for f in report.findings] == ["REPRO301"]

    def test_comment_block_suppression_stops_at_code_lines(self, tmp_path):
        # an allow[] above an unrelated *code* line does not leak down
        bad = tmp_path / "leak.py"
        bad.write_text(
            "import os\n"
            "\n"
            "def rotate(path):\n"
            "    # repro: allow[REPRO301] covers only the next statement\n"
            "    os.rename(path, path)\n"
            "    os.replace(path, path)\n",
            encoding="utf-8",
        )
        report = run_checks([bad], [DurableWriteChecker()])
        assert len(report.findings) == 1
        assert report.findings[0].line == 6
        assert len(report.suppressed) == 1


class TestSelection:
    def test_select_by_checker_name(self):
        report = run_checks(
            [FIXTURES], all_checkers(), select=["durable-write"]
        )
        assert {f.code for f in report.findings} == {"REPRO301"}

    def test_select_by_code(self):
        report = run_checks([FIXTURES], all_checkers(), select=["REPRO601"])
        assert {f.code for f in report.findings} == {"REPRO601"}
        # REPRO602 shares the checker but is filtered out by the code token
        assert all(f.code != "REPRO602" for f in report.findings)

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="REPRO999"):
            select_checkers(all_checkers(), ["REPRO999"])

    def test_full_fixture_sweep_counts(self):
        report = run_checks([FIXTURES], all_checkers())
        by_code = {}
        for finding in report.findings:
            by_code[finding.code] = by_code.get(finding.code, 0) + 1
        assert by_code == {
            "REPRO101": 3,
            "REPRO201": 2,
            "REPRO301": 4,
            "REPRO401": 3,
            "REPRO501": 2,
            "REPRO601": 2,
            "REPRO602": 1,
            "REPRO701": 3,
        }
        assert len(report.suppressed) == 3
        assert report.files_checked == len(list(FIXTURES.glob("*.py")))


class TestOutput:
    def test_json_document_shape(self):
        report = run_checks([FIXTURES / "guarded_bad.py"], all_checkers())
        document = json.loads(report.render_json())
        assert document["ok"] is False
        assert document["files_checked"] == 1
        assert document["errors"] == []
        assert document["suppressed"] == []
        for row in document["findings"]:
            assert set(row) == {"path", "line", "col", "code", "message"}
            assert row["code"] == "REPRO201"
            assert row["path"].endswith("guarded_bad.py")

    def test_human_rendering(self):
        report = run_checks([FIXTURES / "guarded_bad.py"], all_checkers())
        text = report.render_human()
        assert "REPRO201" in text
        assert text.endswith("2 finding(s) (0 suppressed) in 1 file(s)")
        rendered = Finding("a.py", 3, 7, "REPRO101", "msg").render()
        assert rendered == "a.py:3:7: REPRO101 msg"

    def test_syntax_errors_are_reported_not_raised(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n", encoding="utf-8")
        report = run_checks([broken], all_checkers())
        assert not report.ok
        assert report.findings == []
        assert len(report.errors) == 1 and "broken.py" in report.errors[0]


class TestSourceCache:
    def test_reparse_only_on_mtime_change(self, tmp_path):
        import os

        path = tmp_path / "cached.py"
        path.write_text("x = 1\n", encoding="utf-8")
        first = load_source(path)
        assert load_source(path) is first
        path.write_text("x = 2\n", encoding="utf-8")
        os.utime(path, ns=(0, path.stat().st_mtime_ns + 1_000_000_000))
        second = load_source(path)
        assert second is not first
        assert second.text == "x = 2\n"

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "keep.py").write_text("x = 1\n", encoding="utf-8")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "keep.cpython-311.pyc.py").write_text("x = 1\n")
        found = list(iter_python_files([tmp_path]))
        assert [p.name for p in found] == ["keep.py"]


class TestCli:
    def test_check_command_fails_on_bad_fixture(self, capsys):
        code = main(["check", str(FIXTURES / "durable_bad.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "REPRO301" in out and "4 finding(s)" in out

    def test_check_command_passes_on_good_fixture_json(self, capsys):
        code = main(
            ["check", "--format", "json", str(FIXTURES / "durable_good.py")]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True and document["findings"] == []

    def test_check_command_select_filter(self, capsys):
        code = main(
            ["check", "--select", "REPRO301", str(FIXTURES / "threads_bad.py")]
        )
        assert code == 0  # thread findings filtered out by the selector
        assert "0 finding(s)" in capsys.readouterr().out

    def test_check_command_rejects_unknown_selector(self, capsys):
        code = main(["check", "--select", "NOPE", str(FIXTURES)])
        assert code == 2
        assert "NOPE" in capsys.readouterr().err

    def test_check_command_clean_on_package_default(self, capsys):
        # the shipped tree must be clean: this is the same invocation the
        # CI static-analysis job gates on (default paths = the package)
        code = main(["check", "--format", "json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["findings"] == []
        assert document["files_checked"] > 50
