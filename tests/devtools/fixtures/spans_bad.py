"""REPRO701 fixture: tracer span() calls opened outside a ``with``."""


def leaked(tracer):
    context = tracer.span("leaked")  # assigned, never exited
    return context


def hand_managed(tracer):
    span = tracer.span("manual")
    span.__enter__()  # the generator is entered by hand
    return span


def stacked(stack, tracer):
    return stack.enter_context(tracer.span("stacked"))  # hidden lifetime
