"""Fixture: named threads, reaped on close (0 findings)."""

import threading


class Worker:
    def __init__(self):
        self._thread = threading.Thread(
            target=self._run, name="fixture-worker", daemon=True
        )

    def _run(self):
        pass

    def close(self):
        self._thread.join()


class Loop(threading.Thread):
    def __init__(self):
        super().__init__(name="fixture-loop", daemon=True)
