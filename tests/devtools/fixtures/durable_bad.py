"""Fixture: non-durable state-file writes (REPRO301 x4)."""

import json
import os


def save_state(path, document):
    with open(path, "w", encoding="utf-8") as handle:  # REPRO301
        json.dump(document, handle)  # REPRO301


def rotate(path):
    os.rename(path, str(path) + ".old")  # REPRO301


def stamp(path, text):
    path.write_text(text, encoding="utf-8")  # REPRO301
