"""Fixture: bare builtin exceptions in route handlers (REPRO501 x2)."""


class Router:
    def dispatch(self, route):
        if route is None:
            raise ValueError("unknown route")  # REPRO501
        raise RuntimeError  # REPRO501: bare name, no call
