"""Fixture: blocking work hops through the executor (0 findings)."""

import asyncio


class Handler:
    async def handle(self, request):
        loop = asyncio.get_running_loop()
        # the blocking callable is passed by reference, never called here
        return await loop.run_in_executor(None, self._dispatch, request)

    async def pause(self):
        await asyncio.sleep(0.01)

    def _dispatch(self, request):
        return request
