"""Fixture: anonymous / unreaped threads (REPRO601 x2, REPRO602 x1)."""

import threading


class Worker:
    def __init__(self):
        # REPRO601 (no name=) and REPRO602 (never joined in the class)
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        pass


class Loop(threading.Thread):
    def __init__(self):
        super().__init__(daemon=True)  # REPRO601: subclass without name=
