"""REPRO701 fixture: every span is a with-statement context expression."""


def traced(tracer):
    with tracer.span("outer") as outer:
        with tracer.span("inner", parent_id=outer.span_id) as inner:
            return inner


def bare_name_span(span):
    with span("router.route", shards=[0, 1]):
        pass


def not_a_span_call(wing):
    # a plain attribute access named span is not a span() call
    return wing.span
