"""Fixture: durable-write discipline respected (0 findings)."""

import os


def write_durable(path, text):
    # the one sanctioned primitive: tmp + fsync + atomic rename
    tmp = str(path) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def append_wal(path, record):
    # append-mode is the WAL's own separately-reviewed discipline
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(record)


def read_state(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()
