"""Fixture: guarded fields touched outside their lock (REPRO201 x2)."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def increment(self):
        self._count += 1  # REPRO201: write without the lock

    def peek(self):
        return self._count  # REPRO201: read without the lock
