"""Fixture: wall-clock time in duration arithmetic (REPRO101 x3)."""

import time
from time import time as now  # REPRO101: hides the clock kind at call sites


def elapsed(start):
    return time.time() - start  # REPRO101: duration math on the wall clock


class Poller:
    def __init__(self):
        # "deadline" is not a pinned event-timestamp name
        self.deadline = time.time() + 5.0  # REPRO101

    def tick(self):
        return now()
