"""Fixture: structured error families + exempt surfaces (0 findings)."""


class BadRequest(Exception):
    """Project error family: maps to the structured envelope."""


class Router:
    def dispatch(self, route):
        if route is None:
            raise BadRequest("unknown route")
        return route

    async def start(self):
        # lifecycle surface: errors face the embedding process
        raise RuntimeError("already started")


class BackgroundServer:
    def port(self):
        # exempt class: not a route handler
        raise RuntimeError("server is not started")
