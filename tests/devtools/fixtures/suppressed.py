"""Fixture: violations silenced by inline suppressions (0 findings, 3 suppressed)."""

import os


def rotate(path):
    # repro: allow[REPRO301] fixture: rename of an already-fsynced file
    os.replace(path, str(path) + ".bak")


def stamp(path, text):
    path.write_text(text)  # repro: allow[*] fixture: allow-all inline


def relocate(path):
    # a multi-line justification: the allow[...] marker sits at the top of
    # the contiguous comment block directly above the flagged line
    # repro: allow[REPRO301, REPRO999] fixture: comment-block suppression
    # (the unknown REPRO999 code is inert — it silences nothing real)
    os.rename(path, str(path) + ".moved")
