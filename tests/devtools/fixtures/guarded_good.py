"""Fixture: every guarded access holds the lock (0 findings)."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock
        self._count = self._count + 0  # __init__ is single-threaded: exempt

    def increment(self):
        with self._lock:
            self._count += 1

    def snapshot(self):
        with self._lock:
            return self._count

    def _drain_locked(self):
        # the *_locked suffix documents "caller holds the lock"
        value = self._count
        self._count = 0
        return value
