"""Fixture: monotonic discipline respected (0 findings, 2 pinned allows)."""

import time


def elapsed(start):
    return time.monotonic() - start


def latency(start):
    return time.perf_counter() - start


class View:
    def __init__(self):
        self.published_at = time.time()  # pinned event-timestamp name


def log_event(event):
    return {"event": event, "ts": time.time()}  # pinned event-timestamp key
