"""Fixture: blocking calls on the event loop (REPRO401 x3)."""

import time


class Handler:
    async def handle(self, request):
        time.sleep(0.01)  # REPRO401: stalls every connection
        body = self._dispatch(request)  # REPRO401: dispatch may take locks
        with open("state.json", encoding="utf-8") as handle:  # REPRO401
            handle.read()
        return body

    def _dispatch(self, request):
        return request
