"""The top-level package exposes the documented public API."""

from __future__ import annotations

import repro


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name} but it is missing"

    def test_core_entry_points_present(self):
        for name in (
            "DynELM",
            "DynStrClu",
            "StrCluParams",
            "Clustering",
            "static_scan",
            "ExactDynamicSCAN",
            "IndexedDynamicSCAN",
        ):
            assert name in repro.__all__

    def test_extension_entry_points_present(self):
        for name in (
            "SlidingWindowClustering",
            "StreamProcessor",
            "ClusterTracker",
            "classify_roles",
            "take_snapshot",
            "restore_dynstrclu",
        ):
            assert name in repro.__all__

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_quickstart_docstring_flow(self):
        """The flow shown in the package docstring works as written."""
        params = repro.StrCluParams(epsilon=0.5, mu=2, rho=0.01, seed=1)
        algo = repro.DynStrClu(params)
        for edge in [(0, 1), (1, 2), (0, 2), (2, 3)]:
            algo.insert_edge(*edge)
        assert algo.clustering().num_clusters == 1
