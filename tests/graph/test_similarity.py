"""Unit tests for exact structural similarities."""

from __future__ import annotations

import math

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.similarity import (
    SimilarityKind,
    cosine_similarity,
    intersection_union_sizes,
    jaccard_similarity,
    structural_similarity,
)


@pytest.fixture
def small_graph() -> DynamicGraph:
    # triangle 0-1-2 plus pendant 3 attached to 2
    return DynamicGraph([(0, 1), (1, 2), (0, 2), (2, 3)])


class TestJaccard:
    def test_identical_neighbourhoods(self, small_graph):
        # N[0] = N[1] = {0, 1, 2}
        assert jaccard_similarity(small_graph, 0, 1) == pytest.approx(1.0)

    def test_partial_overlap(self, small_graph):
        # N[0] = {0,1,2}, N[2] = {0,1,2,3} -> 3/4
        assert jaccard_similarity(small_graph, 0, 2) == pytest.approx(0.75)

    def test_pendant_edge(self, small_graph):
        # N[2] = {0,1,2,3}, N[3] = {2,3} -> 2/4
        assert jaccard_similarity(small_graph, 2, 3) == pytest.approx(0.5)

    def test_non_adjacent_pair_is_zero(self, small_graph):
        assert jaccard_similarity(small_graph, 0, 3) == 0.0

    def test_symmetry(self, small_graph):
        for u, v in small_graph.edges():
            assert jaccard_similarity(small_graph, u, v) == pytest.approx(
                jaccard_similarity(small_graph, v, u)
            )

    def test_range(self, small_graph):
        for u, v in small_graph.edges():
            sigma = jaccard_similarity(small_graph, u, v)
            assert 0.0 < sigma <= 1.0


class TestCosine:
    def test_known_value(self, small_graph):
        # edge (2,3): |N[2] ∩ N[3]| = 2, |N[2]| = 4, |N[3]| = 2 -> 2/sqrt(8)
        expected = 2.0 / math.sqrt(8.0)
        assert cosine_similarity(small_graph, 2, 3) == pytest.approx(expected)

    def test_identical_closed_neighbourhoods_give_one(self, small_graph):
        # edge (0,1): N[0] = N[1] = {0,1,2} -> 3/sqrt(9) = 1
        assert cosine_similarity(small_graph, 0, 1) == pytest.approx(1.0)

    def test_non_adjacent_pair_is_zero(self, small_graph):
        assert cosine_similarity(small_graph, 1, 3) == 0.0

    def test_cosine_at_least_jaccard(self, small_graph):
        """The paper's Section 9.1 inequality: σ_c(u,v) ≥ σ(u,v) for every edge."""
        for u, v in small_graph.edges():
            assert cosine_similarity(small_graph, u, v) >= jaccard_similarity(
                small_graph, u, v
            ) - 1e-12

    def test_cosine_inequality_on_random_graph(self, powerlaw_edges):
        graph = DynamicGraph(powerlaw_edges)
        for u, v in graph.edges():
            assert cosine_similarity(graph, u, v) + 1e-12 >= jaccard_similarity(graph, u, v)

    def test_cosine_can_exceed_one_never(self, powerlaw_edges):
        graph = DynamicGraph(powerlaw_edges)
        for u, v in graph.edges():
            assert cosine_similarity(graph, u, v) <= 1.0 + 1e-12


class TestIntersectionUnion:
    def test_counts_match_set_algebra(self, small_graph):
        for u, v in small_graph.edges():
            a, b = intersection_union_sizes(small_graph, u, v)
            nu = small_graph.closed_neighbourhood(u)
            nv = small_graph.closed_neighbourhood(v)
            assert a == len(nu & nv)
            assert b == len(nu | nv)

    def test_works_for_non_adjacent_pairs(self, small_graph):
        a, b = intersection_union_sizes(small_graph, 0, 3)
        assert (a, b) == (1, 4)


class TestDispatch:
    def test_structural_similarity_jaccard(self, small_graph):
        assert structural_similarity(small_graph, 0, 2, SimilarityKind.JACCARD) == pytest.approx(
            0.75
        )

    def test_structural_similarity_cosine(self, small_graph):
        assert structural_similarity(small_graph, 0, 2, SimilarityKind.COSINE) == pytest.approx(
            cosine_similarity(small_graph, 0, 2)
        )

    def test_unknown_kind_raises(self, small_graph):
        with pytest.raises(ValueError):
            structural_similarity(small_graph, 0, 2, "tanimoto")  # type: ignore[arg-type]

    def test_kind_enum_from_string(self):
        assert SimilarityKind("jaccard") is SimilarityKind.JACCARD
        assert SimilarityKind("cosine") is SimilarityKind.COSINE


class TestPairSimilarityAgreement:
    def test_set_based_form_matches_graph_based_form(self):
        """pair_similarity (the sharded merge's form) must agree exactly
        with structural_similarity for every edge and both kinds."""
        import random

        from repro.graph.dynamic_graph import DynamicGraph
        from repro.graph.similarity import (
            SimilarityKind,
            pair_similarity,
            structural_similarity,
        )

        rng = random.Random(13)
        graph = DynamicGraph()
        for _ in range(120):
            u, v = rng.randrange(18), rng.randrange(18)
            if u == v or graph.has_edge(u, v):
                continue
            graph.insert_edge(u, v)
        for u, v in graph.edges():
            for kind in (SimilarityKind.JACCARD, SimilarityKind.COSINE):
                expected = structural_similarity(graph, u, v, kind)
                got = pair_similarity(
                    graph.closed_neighbourhood(u),
                    graph.closed_neighbourhood(v),
                    kind,
                )
                assert got == expected, (u, v, kind)
