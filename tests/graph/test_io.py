"""Unit tests for edge-list I/O and preprocessing."""

from __future__ import annotations

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.io import (
    graph_from_edges,
    load_edge_list,
    parse_edge_list,
    preprocess_edges,
    save_edge_list,
    save_graphml,
)


class TestParsing:
    def test_skips_comments_and_blank_lines(self):
        lines = ["# a comment", "", "1 2", "2\t3", "   ", "# trailing"]
        assert parse_edge_list(lines) == [("1", "2"), ("2", "3")]

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_edge_list(["1"])

    def test_extra_columns_ignored(self):
        assert parse_edge_list(["1 2 0.5 extra"]) == [("1", "2")]


class TestPreprocessing:
    def test_removes_self_loops_and_duplicates(self):
        pairs = [("a", "a"), ("a", "b"), ("b", "a"), ("a", "b"), ("b", "c")]
        edges, mapping = preprocess_edges(pairs)
        assert len(edges) == 2
        assert set(mapping) == {"a", "b", "c"}

    def test_relabels_to_consecutive_integers(self):
        pairs = [("x", "y"), ("y", "z")]
        edges, mapping = preprocess_edges(pairs)
        assert sorted(mapping.values()) == [0, 1, 2]
        assert all(isinstance(u, int) and isinstance(v, int) for u, v in edges)

    def test_undirected_deduplication(self):
        pairs = [("1", "2"), ("2", "1")]
        edges, _ = preprocess_edges(pairs)
        assert len(edges) == 1


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list([(0, 1), (1, 2)], path, header="test graph\ntwo edges")
        edges, mapping = load_edge_list(path)
        assert len(edges) == 2
        graph = graph_from_edges(edges)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_header_is_commented(self, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list([(5, 6)], path, header="hello")
        content = path.read_text()
        assert content.startswith("# hello")


class TestGraphML:
    def test_export_contains_nodes_edges_and_clusters(self, tmp_path):
        graph = DynamicGraph([(0, 1), (1, 2)])
        path = tmp_path / "out.graphml"
        save_graphml(graph, {0: 1, 1: 1, 2: -1}, path)
        text = path.read_text()
        assert text.count("<node") == 3
        assert text.count("<edge") == 2
        assert ">1</data>" in text and ">-1</data>" in text

    def test_export_without_clusters(self, tmp_path):
        graph = DynamicGraph([(0, 1)])
        path = tmp_path / "plain.graphml"
        save_graphml(graph, None, path)
        assert "<graphml" in path.read_text()
