"""Unit tests for the dynamic graph substrate."""

from __future__ import annotations

import random

import pytest

from repro.graph.dynamic_graph import DynamicGraph, GraphError, canonical_edge


class TestCanonicalEdge:
    def test_orders_integer_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_orders_string_endpoints(self):
        assert canonical_edge("b", "a") == ("a", "b")

    def test_mixed_types_fall_back_to_repr_order(self):
        edge = canonical_edge("x", 1)
        assert set(edge) == {"x", 1}
        assert canonical_edge(1, "x") == edge


class TestBasicMutations:
    def test_empty_graph(self):
        g = DynamicGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert not g.has_edge(0, 1)
        assert g.degree(0) == 0

    def test_insert_creates_vertices(self):
        g = DynamicGraph()
        g.insert_edge(1, 2)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)

    def test_insert_duplicate_raises(self):
        g = DynamicGraph([(1, 2)])
        with pytest.raises(GraphError):
            g.insert_edge(2, 1)

    def test_self_loop_rejected(self):
        g = DynamicGraph()
        with pytest.raises(GraphError):
            g.insert_edge(3, 3)

    def test_delete_edge(self):
        g = DynamicGraph([(1, 2), (2, 3)])
        g.delete_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1
        assert g.has_vertex(1)  # endpoints survive

    def test_delete_missing_edge_raises(self):
        g = DynamicGraph([(1, 2)])
        with pytest.raises(GraphError):
            g.delete_edge(1, 3)

    def test_remove_vertex_drops_incident_edges(self):
        g = DynamicGraph([(1, 2), (1, 3), (2, 3)])
        g.remove_vertex(1)
        assert not g.has_vertex(1)
        assert g.num_edges == 1
        assert g.has_edge(2, 3)

    def test_remove_absent_vertex_is_noop(self):
        g = DynamicGraph([(1, 2)])
        g.remove_vertex(99)
        assert g.num_edges == 1

    def test_add_vertex_idempotent(self):
        g = DynamicGraph()
        g.add_vertex(7)
        g.add_vertex(7)
        assert g.num_vertices == 1
        assert g.degree(7) == 0

    def test_constructor_from_edges(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        g = DynamicGraph(edges)
        assert g.num_edges == 3
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]


class TestNeighbourhoods:
    def test_neighbours_and_degree(self, triangle_graph):
        assert triangle_graph.degree(2) == 3
        assert triangle_graph.neighbours(2) == {0, 1, 3}

    def test_closed_neighbourhood_includes_self(self, triangle_graph):
        assert triangle_graph.closed_neighbourhood(0) == {0, 1, 2}
        assert triangle_graph.closed_neighbourhood(3) == {2, 3}

    def test_closed_neighbourhood_is_a_copy(self, triangle_graph):
        n = triangle_graph.closed_neighbourhood(0)
        n.add(99)
        assert 99 not in triangle_graph.closed_neighbourhood(0)

    def test_common_and_union_counts(self, triangle_graph):
        # N[0] = {0,1,2}, N[2] = {0,1,2,3}
        assert triangle_graph.common_closed_neighbours(0, 2) == 3
        assert triangle_graph.union_closed_neighbours(0, 2) == 4

    def test_common_neighbours_nonadjacent_pair(self, triangle_graph):
        # N[0] = {0,1,2}, N[3] = {2,3}
        assert triangle_graph.common_closed_neighbours(0, 3) == 1

    def test_edges_reported_once(self):
        g = DynamicGraph([(0, 1), (1, 2)])
        assert sorted(g.edges()) == [(0, 1), (1, 2)]


class TestRandomNeighbourSampling:
    def test_isolated_vertex_returns_itself(self, rng):
        g = DynamicGraph()
        g.add_vertex(5)
        assert g.random_closed_neighbour(5, rng) == 5

    def test_samples_only_closed_neighbourhood(self, rng):
        g = DynamicGraph([(0, 1), (0, 2), (0, 3)])
        closed = g.closed_neighbourhood(0)
        for _ in range(200):
            assert g.random_closed_neighbour(0, rng) in closed

    def test_distribution_is_roughly_uniform(self):
        g = DynamicGraph([(0, 1), (0, 2), (0, 3)])
        rng = random.Random(7)
        counts = {v: 0 for v in (0, 1, 2, 3)}
        trials = 8000
        for _ in range(trials):
            counts[g.random_closed_neighbour(0, rng)] += 1
        for v, count in counts.items():
            assert abs(count / trials - 0.25) < 0.05, (v, count)

    def test_sampling_after_deletions_stays_consistent(self, rng):
        g = DynamicGraph([(0, 1), (0, 2), (0, 3), (0, 4)])
        g.delete_edge(0, 2)
        g.delete_edge(0, 4)
        valid = g.closed_neighbourhood(0)
        for _ in range(100):
            assert g.random_closed_neighbour(0, rng) in valid


class TestCopyAndEquality:
    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.insert_edge(3, 4)
        assert not triangle_graph.has_edge(3, 4)
        assert clone.has_edge(3, 4)

    def test_equality_by_structure(self):
        a = DynamicGraph([(0, 1), (1, 2)])
        b = DynamicGraph([(1, 2), (0, 1)])
        assert a == b
        b.insert_edge(2, 3)
        assert a != b

    def test_contains_and_len(self, triangle_graph):
        assert 0 in triangle_graph
        assert 42 not in triangle_graph
        assert len(triangle_graph) == 4


class TestStress:
    def test_random_mutation_sequence_matches_reference(self):
        """Insert/delete randomly and compare against a naive edge-set mirror."""
        rng = random.Random(3)
        g = DynamicGraph()
        mirror = set()
        n = 25
        for _ in range(2000):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            key = canonical_edge(u, v)
            if key in mirror:
                g.delete_edge(u, v)
                mirror.discard(key)
            else:
                g.insert_edge(u, v)
                mirror.add(key)
            assert g.num_edges == len(mirror)
        assert set(g.edges()) == mirror
        for u in range(n):
            expected = {b if a == u else a for a, b in mirror if u in (a, b)}
            assert g.neighbours(u) == expected
