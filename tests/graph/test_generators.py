"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    community_membership,
    erdos_renyi_graph,
    hub_and_noise_graph,
    planted_partition_graph,
    powerlaw_cluster_graph,
    preferential_attachment_graph,
)


def _assert_simple(edges):
    seen = set()
    for u, v in edges:
        assert u != v, "self loop generated"
        assert (u, v) not in seen and (v, u) not in seen, "duplicate edge generated"
        seen.add((u, v))


class TestErdosRenyi:
    def test_exact_edge_count(self):
        edges = erdos_renyi_graph(30, 50, seed=1)
        assert len(edges) == 50
        _assert_simple(edges)

    def test_deterministic_for_seed(self):
        assert erdos_renyi_graph(30, 40, seed=5) == erdos_renyi_graph(30, 40, seed=5)
        assert erdos_renyi_graph(30, 40, seed=5) != erdos_renyi_graph(30, 40, seed=6)

    def test_too_many_edges_raises(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, 11, seed=0)


class TestPreferentialAttachment:
    def test_vertex_range_and_simplicity(self):
        edges = preferential_attachment_graph(100, 3, seed=2)
        _assert_simple(edges)
        vertices = {v for e in edges for v in e}
        assert vertices <= set(range(100))

    def test_heavy_tail(self):
        """Max degree should be several times the average degree."""
        edges = preferential_attachment_graph(300, 3, seed=4)
        degrees = Counter()
        for u, v in edges:
            degrees[u] += 1
            degrees[v] += 1
        avg = sum(degrees.values()) / len(degrees)
        assert max(degrees.values()) > 3 * avg

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(3, 5, seed=0)
        with pytest.raises(ValueError):
            preferential_attachment_graph(10, 0, seed=0)


class TestPowerlawCluster:
    def test_simple_and_connected_enough(self):
        edges = powerlaw_cluster_graph(200, 3, 0.7, seed=3)
        _assert_simple(edges)
        graph = DynamicGraph(edges)
        assert graph.num_vertices == 200
        # every non-seed vertex attaches to >= 1 earlier vertex
        assert all(graph.degree(v) >= 1 for v in range(3, 200))

    def test_triangle_probability_increases_clustering(self):
        def triangle_count(edges):
            graph = DynamicGraph(edges)
            count = 0
            for u, v in graph.edges():
                count += graph.common_closed_neighbours(u, v) - 2  # exclude endpoints
            return count

        low = triangle_count(powerlaw_cluster_graph(300, 3, 0.0, seed=8))
        high = triangle_count(powerlaw_cluster_graph(300, 3, 0.95, seed=8))
        assert high > low

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(50, 2, 1.5, seed=0)


class TestPlantedPartition:
    def test_block_structure(self):
        edges = planted_partition_graph(3, 10, p_intra=1.0, p_inter=0.0, seed=0)
        _assert_simple(edges)
        for u, v in edges:
            assert u // 10 == v // 10, "inter-community edge with p_inter = 0"
        # p_intra = 1.0 -> complete blocks
        assert len(edges) == 3 * (10 * 9 // 2)

    def test_inter_community_edges_appear(self):
        edges = planted_partition_graph(2, 20, p_intra=0.3, p_inter=0.3, seed=1)
        crossing = [e for e in edges if e[0] // 20 != e[1] // 20]
        assert crossing

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            planted_partition_graph(2, 5, p_intra=0.1, p_inter=0.5, seed=0)

    def test_membership_helper(self):
        membership = community_membership(3, 4)
        assert membership == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]

    def test_deterministic(self):
        a = planted_partition_graph(3, 8, 0.4, 0.02, seed=9)
        b = planted_partition_graph(3, 8, 0.4, 0.02, seed=9)
        assert a == b


class TestHubAndNoise:
    def test_extra_vertices_created(self):
        edges = hub_and_noise_graph(3, 8, hubs=2, noise=4, seed=5)
        _assert_simple(edges)
        vertices = {v for e in edges for v in e}
        base = 3 * 8
        assert max(vertices) >= base  # hubs and noise vertices beyond the blocks

    def test_noise_vertices_have_degree_one(self):
        edges = hub_and_noise_graph(2, 6, hubs=1, noise=3, seed=2)
        graph = DynamicGraph(edges)
        base = 2 * 6
        noise_ids = sorted(v for v in graph.vertices() if v >= base)[-3:]
        for v in noise_ids:
            assert graph.degree(v) == 1

    def test_hub_touches_two_communities(self):
        edges = hub_and_noise_graph(3, 10, hubs=1, noise=0, p_intra=0.8, seed=6)
        graph = DynamicGraph(edges)
        hub = 30
        communities = {w // 10 for w in graph.neighbours(hub)}
        assert len(communities) == 2
