"""Unit tests for Euler-tour forests and the ETT connectivity backend."""

from __future__ import annotations

import random

import pytest

from repro.connectivity.euler_tour import EulerTourConnectivity, EulerTourForest


class TestEulerTourForest:
    def test_isolated_vertices(self):
        forest = EulerTourForest()
        forest.add_vertex(1)
        forest.add_vertex(2)
        assert not forest.connected(1, 2)
        assert forest.tree_size(1) == 1

    def test_link_connects(self):
        forest = EulerTourForest()
        forest.link(1, 2)
        forest.link(2, 3)
        assert forest.connected(1, 3)
        assert forest.tree_size(1) == 3
        assert forest.component_id(1) == forest.component_id(3)

    def test_link_same_tree_rejected(self):
        forest = EulerTourForest()
        forest.link(1, 2)
        forest.link(2, 3)
        with pytest.raises(ValueError):
            forest.link(1, 3)

    def test_duplicate_link_rejected(self):
        forest = EulerTourForest()
        forest.link(1, 2)
        with pytest.raises(ValueError):
            forest.link(2, 1)

    def test_cut_splits(self):
        forest = EulerTourForest()
        forest.link(1, 2)
        forest.link(2, 3)
        forest.link(3, 4)
        forest.cut(2, 3)
        assert forest.connected(1, 2)
        assert forest.connected(3, 4)
        assert not forest.connected(1, 4)
        assert forest.tree_size(1) == 2
        assert forest.tree_size(4) == 2

    def test_cut_missing_edge_rejected(self):
        forest = EulerTourForest()
        forest.link(1, 2)
        with pytest.raises(ValueError):
            forest.cut(1, 3)

    def test_tree_vertices(self):
        forest = EulerTourForest()
        for a, b in [(0, 1), (1, 2), (1, 3)]:
            forest.link(a, b)
        forest.add_vertex(9)
        assert sorted(forest.tree_vertices(2)) == [0, 1, 2, 3]
        assert forest.tree_vertices(9) == [9]

    def test_remove_isolated_vertex(self):
        forest = EulerTourForest()
        forest.add_vertex(5)
        forest.remove_vertex(5)
        assert not forest.has_vertex(5)

    def test_remove_connected_vertex_rejected(self):
        forest = EulerTourForest()
        forest.link(1, 2)
        with pytest.raises(ValueError):
            forest.remove_vertex(1)

    def test_invariant_after_random_link_cut(self):
        rng = random.Random(2)
        forest = EulerTourForest(seed=2)
        tree_edges = set()
        for v in range(40):
            forest.add_vertex(v)
        for _ in range(800):
            u, v = rng.sample(range(40), 2)
            key = (min(u, v), max(u, v))
            if key in tree_edges:
                forest.cut(*key)
                tree_edges.discard(key)
            elif not forest.connected(u, v):
                forest.link(u, v)
                tree_edges.add(key)
        assert forest.check_invariant()
        assert forest.num_tree_edges() == len(tree_edges)


class TestMarks:
    def test_vertex_marks_searchable(self):
        forest = EulerTourForest()
        for a, b in [(0, 1), (1, 2), (2, 3)]:
            forest.link(a, b)
        assert forest.find_marked_vertex(0) is None
        forest.set_vertex_mark(2, True)
        assert forest.find_marked_vertex(0) == 2
        forest.set_vertex_mark(2, False)
        assert forest.find_marked_vertex(0) is None

    def test_edge_marks_searchable(self):
        forest = EulerTourForest()
        for a, b in [(0, 1), (1, 2), (2, 3)]:
            forest.link(a, b)
        assert forest.find_marked_edge(3) is None
        forest.set_edge_mark(1, 2, True)
        assert forest.find_marked_edge(3) == (1, 2)
        forest.set_edge_mark(1, 2, False)
        assert forest.find_marked_edge(3) is None

    def test_marks_limited_to_their_tree(self):
        forest = EulerTourForest()
        forest.link(0, 1)
        forest.link(5, 6)
        forest.set_vertex_mark(6, True)
        assert forest.find_marked_vertex(0) is None
        assert forest.find_marked_vertex(5) == 6

    def test_marks_survive_restructuring(self):
        forest = EulerTourForest()
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            forest.link(a, b)
        forest.set_vertex_mark(4, True)
        forest.cut(2, 3)
        # vertex 4 is now in the {3, 4} tree
        assert forest.find_marked_vertex(3) == 4
        assert forest.find_marked_vertex(0) is None

    def test_edge_mark_unknown_edge_rejected(self):
        forest = EulerTourForest()
        forest.link(0, 1)
        with pytest.raises(ValueError):
            forest.set_edge_mark(0, 2, True)


class TestEulerTourConnectivity:
    def test_insert_delete_with_replacement(self):
        cc = EulerTourConnectivity()
        for e in [(1, 2), (2, 3), (1, 3)]:
            cc.insert_edge(*e)
        cc.delete_edge(1, 2)
        assert cc.connected(1, 2)  # replacement via 3
        cc.delete_edge(1, 3)
        assert not cc.connected(1, 2)

    def test_component_sizes(self):
        cc = EulerTourConnectivity()
        cc.insert_edge(1, 2)
        cc.insert_edge(2, 3)
        cc.insert_edge(4, 5)
        assert cc.component_size(1) == 3
        assert cc.component_size(5) == 2

    def test_duplicate_and_missing_edges_rejected(self):
        cc = EulerTourConnectivity()
        cc.insert_edge(1, 2)
        with pytest.raises(ValueError):
            cc.insert_edge(1, 2)
        with pytest.raises(ValueError):
            cc.delete_edge(1, 3)

    def test_matches_union_find_on_random_sequence(self):
        from repro.connectivity.union_find import UnionFindConnectivity

        rng = random.Random(11)
        ett = EulerTourConnectivity(seed=11)
        reference = UnionFindConnectivity()
        present = set()
        n = 25
        for _ in range(1200):
            u, v = rng.sample(range(n), 2)
            key = (min(u, v), max(u, v))
            if key in present:
                ett.delete_edge(*key)
                reference.delete_edge(*key)
                present.discard(key)
            else:
                ett.insert_edge(*key)
                reference.insert_edge(*key)
                present.add(key)
        for u in range(n):
            for v in range(u + 1, n):
                if reference.has_vertex(u) and reference.has_vertex(v) and ett.has_vertex(u) and ett.has_vertex(v):
                    assert ett.connected(u, v) == reference.connected(u, v)
