"""Unit tests for the HDT fully dynamic connectivity structure."""

from __future__ import annotations

import random

import pytest

from repro.connectivity import make_connectivity
from repro.connectivity.hdt import HDTConnectivity
from repro.connectivity.union_find import UnionFindConnectivity


class TestBasics:
    def test_insert_connects(self):
        cc = HDTConnectivity()
        cc.insert_edge(1, 2)
        cc.insert_edge(2, 3)
        assert cc.connected(1, 3)
        assert cc.component_size(1) == 3
        assert cc.num_edges() == 2
        assert cc.num_vertices() == 3

    def test_delete_tree_edge_without_replacement(self):
        cc = HDTConnectivity()
        cc.insert_edge(1, 2)
        cc.insert_edge(2, 3)
        cc.delete_edge(2, 3)
        assert cc.connected(1, 2)
        assert not cc.connected(1, 3)

    def test_delete_tree_edge_with_replacement(self):
        cc = HDTConnectivity()
        for e in [(1, 2), (2, 3), (1, 3)]:
            cc.insert_edge(*e)
        cc.delete_edge(1, 2)
        assert cc.connected(1, 2)

    def test_delete_nontree_edge(self):
        cc = HDTConnectivity()
        for e in [(1, 2), (2, 3), (1, 3)]:
            cc.insert_edge(*e)
        # (1, 3) closed a cycle, so it is a non-tree edge at level 0
        assert cc.edge_level(1, 3) == 0
        cc.delete_edge(1, 3)
        assert cc.connected(1, 3)

    def test_duplicate_and_missing_edges_rejected(self):
        cc = HDTConnectivity()
        cc.insert_edge(1, 2)
        with pytest.raises(ValueError):
            cc.insert_edge(2, 1)
        with pytest.raises(ValueError):
            cc.delete_edge(1, 3)

    def test_self_loop_rejected(self):
        cc = HDTConnectivity()
        with pytest.raises(ValueError):
            cc.insert_edge(1, 1)

    def test_vertex_lifecycle(self):
        cc = HDTConnectivity()
        cc.add_vertex("a")
        assert cc.has_vertex("a")
        cc.insert_edge("a", "b")
        with pytest.raises(ValueError):
            cc.remove_vertex("a")
        cc.delete_edge("a", "b")
        cc.remove_vertex("a")
        assert not cc.has_vertex("a")

    def test_disconnected_query_for_unknown_vertices(self):
        cc = HDTConnectivity()
        cc.insert_edge(1, 2)
        assert not cc.connected(1, 99)

    def test_component_ids_consistent_at_query_time(self):
        cc = HDTConnectivity()
        cc.insert_edge(1, 2)
        cc.insert_edge(3, 4)
        cc.insert_edge(2, 3)
        ids = {cc.component_id(v) for v in (1, 2, 3, 4)}
        assert len(ids) == 1
        cc.delete_edge(2, 3)
        assert cc.component_id(1) == cc.component_id(2)
        assert cc.component_id(1) != cc.component_id(3)


class TestLevels:
    def test_levels_increase_under_churn(self):
        """Deleting tree edges in a dense component must promote edges."""
        cc = HDTConnectivity()
        n = 16
        edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
        for e in edges:
            cc.insert_edge(*e)
        rng = random.Random(0)
        rng.shuffle(edges)
        for e in edges[: len(edges) // 2]:
            cc.delete_edge(*e)
        assert cc.max_level >= 1
        # remaining graph is still quite dense, should stay connected
        assert cc.component_size(0) == n

    def test_memory_elements_positive(self):
        cc = HDTConnectivity()
        for e in [(0, 1), (1, 2), (0, 2)]:
            cc.insert_edge(*e)
        assert cc.memory_elements()["cc_node"] > 0


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_churn_matches_union_find(self, seed):
        rng = random.Random(seed)
        n = 30
        hdt = HDTConnectivity(seed=seed)
        oracle = UnionFindConnectivity()
        present = set()
        for step in range(1500):
            u, v = rng.sample(range(n), 2)
            key = (min(u, v), max(u, v))
            if key in present and rng.random() < 0.55:
                hdt.delete_edge(*key)
                oracle.delete_edge(*key)
                present.discard(key)
            elif key not in present:
                hdt.insert_edge(*key)
                oracle.insert_edge(*key)
                present.add(key)
            if step % 50 == 0:
                for a in range(n):
                    if not oracle.has_vertex(a) or not hdt.has_vertex(a):
                        continue
                    for b in range(a + 1, n):
                        if oracle.has_vertex(b) and hdt.has_vertex(b):
                            assert hdt.connected(a, b) == oracle.connected(a, b), (
                                step,
                                a,
                                b,
                            )

    def test_deletion_heavy_workload(self):
        """Insert a full clique then delete everything; no crash, correct end state."""
        cc = HDTConnectivity()
        n = 12
        edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
        for e in edges:
            cc.insert_edge(*e)
        for e in edges:
            cc.delete_edge(*e)
        assert cc.num_edges() == 0
        for u in range(n):
            for v in range(u + 1, n):
                assert not cc.connected(u, v)


class TestFactory:
    def test_make_connectivity_backends(self):
        from repro.connectivity.euler_tour import EulerTourConnectivity

        assert isinstance(make_connectivity("hdt"), HDTConnectivity)
        assert isinstance(make_connectivity("ett"), EulerTourConnectivity)
        assert isinstance(make_connectivity("union_find"), UnionFindConnectivity)
        with pytest.raises(ValueError):
            make_connectivity("nope")
