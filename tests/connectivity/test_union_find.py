"""Unit tests for union-find and the rebuild-on-delete connectivity backend."""

from __future__ import annotations

import pytest

from repro.connectivity.union_find import UnionFind, UnionFindConnectivity


class TestUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert not uf.connected(1, 2)
        assert uf.set_size(1) == 1

    def test_union_and_find(self):
        uf = UnionFind([1, 2, 3, 4])
        assert uf.union(1, 2)
        assert uf.union(3, 4)
        assert uf.connected(1, 2)
        assert not uf.connected(1, 3)
        assert uf.union(2, 3)
        assert uf.connected(1, 4)
        assert uf.set_size(4) == 4

    def test_union_same_set_returns_false(self):
        uf = UnionFind([1, 2])
        uf.union(1, 2)
        assert not uf.union(2, 1)

    def test_add_idempotent_and_len(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("a")
        assert len(uf) == 1
        assert "a" in uf and "b" not in uf


class TestUnionFindConnectivity:
    def test_insert_connects(self):
        cc = UnionFindConnectivity()
        cc.insert_edge(1, 2)
        cc.insert_edge(2, 3)
        assert cc.connected(1, 3)
        assert cc.component_size(1) == 3
        assert cc.num_edges() == 2

    def test_component_ids_consistent(self):
        cc = UnionFindConnectivity()
        cc.insert_edge(1, 2)
        cc.insert_edge(3, 4)
        assert cc.component_id(1) == cc.component_id(2)
        assert cc.component_id(1) != cc.component_id(3)

    def test_delete_splits_component(self):
        cc = UnionFindConnectivity()
        cc.insert_edge(1, 2)
        cc.insert_edge(2, 3)
        cc.delete_edge(1, 2)
        assert not cc.connected(1, 3)
        assert cc.connected(2, 3)
        assert cc.rebuilds >= 1

    def test_delete_keeps_alternative_path(self):
        cc = UnionFindConnectivity()
        for e in [(1, 2), (2, 3), (1, 3)]:
            cc.insert_edge(*e)
        cc.delete_edge(1, 2)
        assert cc.connected(1, 2)

    def test_duplicate_edge_rejected(self):
        cc = UnionFindConnectivity()
        cc.insert_edge(1, 2)
        with pytest.raises(ValueError):
            cc.insert_edge(2, 1)

    def test_delete_missing_edge_rejected(self):
        cc = UnionFindConnectivity()
        with pytest.raises(ValueError):
            cc.delete_edge(1, 2)

    def test_self_loop_rejected(self):
        cc = UnionFindConnectivity()
        with pytest.raises(ValueError):
            cc.insert_edge(4, 4)

    def test_vertex_lifecycle(self):
        cc = UnionFindConnectivity()
        cc.add_vertex(9)
        assert cc.has_vertex(9)
        assert cc.component_size(9) == 1
        cc.remove_vertex(9)
        assert not cc.has_vertex(9)

    def test_remove_non_isolated_vertex_rejected(self):
        cc = UnionFindConnectivity()
        cc.insert_edge(1, 2)
        with pytest.raises(ValueError):
            cc.remove_vertex(1)

    def test_components_helper(self):
        cc = UnionFindConnectivity()
        cc.insert_edge(1, 2)
        cc.insert_edge(3, 4)
        cc.add_vertex(5)
        comps = sorted(sorted(c) for c in cc.components())
        assert comps == [[1, 2], [3, 4], [5]]
        assert cc.num_components() == 3
