"""Unit tests for the experiment report renderers."""

from __future__ import annotations

from repro.experiments.reporting import format_table, rows_to_csv, series_by


ROWS = [
    {"dataset": "a", "algorithm": "DynELM", "seconds": 0.5},
    {"dataset": "a", "algorithm": "pSCAN", "seconds": 1.75},
    {"dataset": "b", "algorithm": "DynELM", "seconds": 0.25},
]


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(ROWS, title="demo")
        assert text.startswith("demo")
        assert "dataset" in text and "algorithm" in text
        assert "DynELM" in text and "pSCAN" in text

    def test_explicit_column_order(self):
        text = format_table(ROWS, columns=["seconds", "dataset"])
        header = text.splitlines()[0]
        assert header.index("seconds") < header.index("dataset")

    def test_missing_cells_render_empty(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_float_formatting(self):
        text = format_table([{"v": 0.000001}, {"v": 123456.0}, {"v": 0.5}])
        assert "e-06" in text or "1.000e-06" in text
        assert "0.5000" in text

    def test_empty_rows(self):
        assert format_table([], columns=["x"]).count("\n") >= 1


class TestCsv:
    def test_round_trip_columns(self):
        csv = rows_to_csv(ROWS)
        lines = csv.splitlines()
        assert lines[0] == "dataset,algorithm,seconds"
        assert len(lines) == 4

    def test_empty(self):
        assert rows_to_csv([]) == ""


class TestSeries:
    def test_group_by_key(self):
        grouped = series_by(ROWS, "dataset")
        assert set(grouped) == {"a", "b"}
        assert len(grouped["a"]) == 2
