"""Smoke-level tests for the experiment runners (tiny scales).

The full-scale reproductions live under ``benchmarks/``; here each runner is
exercised on the smallest dataset with a tiny update multiplier so the test
suite stays fast while still covering the harness code paths end to end.
"""

from __future__ import annotations

import pytest

from repro.experiments import runner
from repro.graph.similarity import SimilarityKind

SMALL = ["email"]
TINY_MULTIPLIER = 0.2


class TestMemoryTable:
    def test_rows_and_ordering(self):
        rows = runner.run_memory_table(datasets=SMALL, update_multiplier=TINY_MULTIPLIER)
        assert len(rows) == 1
        row = rows[0]
        assert row["dataset"] == "email"
        for name in runner.ALGORITHM_NAMES:
            assert row[f"{name}_memory_words"] > 0
        # DynStrClu keeps extra structures on top of DynELM
        assert row["DynStrClu_memory_words"] > row["DynELM_memory_words"]
        # the hSCAN-style index stores similarity-ordered neighbour lists
        assert row["hSCAN_memory_words"] > row["pSCAN_memory_words"]


class TestQualityTable:
    def test_jaccard_rows(self):
        rows = runner.run_quality_table(
            SimilarityKind.JACCARD, rhos=(0.01,), datasets=SMALL, top_ks=(1, 5)
        )
        assert len(rows) == 1
        row = rows[0]
        assert 0.0 <= row["ARI"] <= 1.0
        assert row["mislabelled_%"] < 30.0
        assert "top5_avg" in row

    def test_cosine_rows(self):
        rows = runner.run_quality_table(
            SimilarityKind.COSINE, rhos=(0.01,), datasets=SMALL, top_ks=(1,)
        )
        assert len(rows) == 1
        assert 0.0 <= rows[0]["ARI"] <= 1.0


class TestTimingRunners:
    def test_overall_time(self):
        rows = runner.run_overall_time(
            datasets=SMALL,
            algorithms=("DynStrClu", "pSCAN"),
            update_multiplier=TINY_MULTIPLIER,
        )
        assert {row["algorithm"] for row in rows} == {"DynStrClu", "pSCAN"}
        for row in rows:
            assert row["seconds"] > 0
            assert row["avg_update_us"] > 0

    def test_update_cost_curve(self):
        rows = runner.run_update_cost_curve(
            datasets=SMALL,
            algorithms=("DynStrClu",),
            strategies=("RR",),
            update_multiplier=TINY_MULTIPLIER,
            checkpoints=3,
        )
        timestamps = [row["timestamp"] for row in rows]
        assert timestamps == sorted(timestamps)
        assert len(rows) >= 3

    def test_epsilon_sweep(self):
        rows = runner.run_epsilon_sweep(
            epsilons=(0.2, 0.4),
            datasets=SMALL,
            algorithms=("DynELM",),
            update_multiplier=TINY_MULTIPLIER,
        )
        assert {row["epsilon"] for row in rows} == {0.2, 0.4}

    def test_eta_sweep(self):
        rows = runner.run_eta_sweep(
            etas=(0.0, 0.5),
            datasets=SMALL,
            algorithms=("DynELM",),
            update_multiplier=TINY_MULTIPLIER,
        )
        assert {row["eta"] for row in rows} == {0.0, 0.5}

    def test_rho_sweep(self):
        rows = runner.run_rho_sweep(
            rhos=(0.01, 0.5), datasets=SMALL, update_multiplier=TINY_MULTIPLIER
        )
        assert len(rows) == 2
        by_rho = {row["rho"]: row for row in rows}
        # a larger rho means larger affordability, hence fewer re-labellings
        assert by_rho[0.5]["relabel_invocations"] <= by_rho[0.01]["relabel_invocations"]

    def test_query_size_sweep(self):
        rows = runner.run_query_size_sweep(
            query_sizes=(2, 16), datasets=SMALL, queries_per_size=5
        )
        assert [row["query_size"] for row in rows] == [2, 16]
        for row in rows:
            assert row["avg_query_us"] > 0


class TestVisualisationRunner:
    def test_default_epsilon_rows(self):
        rows = runner.run_visualisation(datasets=SMALL)
        assert len(rows) == 1
        assert rows[0]["num_clusters"] >= 1
        assert rows[0]["top_k_intra_density"] > 0

    def test_epsilon_sweep_rows(self):
        rows = runner.run_visualisation(datasets=SMALL, epsilon_sweep=(0.2, 0.3, 0.5))
        assert [row["epsilon"] for row in rows] == [0.2, 0.3, 0.5]
