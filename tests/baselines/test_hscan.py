"""Unit tests for the hSCAN-style index baseline."""

from __future__ import annotations

import pytest

from repro.baselines.hscan import IndexedDynamicSCAN
from repro.baselines.scan import static_scan
from repro.core.result import clusterings_equal
from repro.graph.similarity import jaccard_similarity
from repro.workloads.updates import InsertionStrategy, generate_update_sequence


class TestIndexMaintenance:
    def test_indexed_similarities_are_exact(self, community_edges):
        algo = IndexedDynamicSCAN.from_edges(community_edges)
        for u, v in algo.graph.edges():
            assert algo.edge_similarity(u, v) == pytest.approx(
                jaccard_similarity(algo.graph, u, v)
            )

    def test_index_exact_after_mixed_updates(self, community_edges):
        workload = generate_update_sequence(
            48, community_edges, 200, InsertionStrategy.RANDOM_RANDOM, eta=0.5, seed=3
        )
        algo = IndexedDynamicSCAN()
        for update in workload.all_updates():
            algo.apply(update)
        for u, v in algo.graph.edges():
            assert algo.edge_similarity(u, v) == pytest.approx(
                jaccard_similarity(algo.graph, u, v)
            )

    def test_deleted_edge_removed_from_index(self, community_edges):
        algo = IndexedDynamicSCAN.from_edges(community_edges[:50])
        u, v = community_edges[0]
        algo.delete_edge(u, v)
        assert algo.edge_similarity(u, v) is None


class TestOnTheFlyQueries:
    def test_clustering_matches_static_scan_for_several_parameters(self, community_edges):
        """The index answers any (epsilon, mu) given at query time."""
        algo = IndexedDynamicSCAN.from_edges(community_edges)
        for epsilon, mu in [(0.3, 2), (0.4, 3), (0.5, 4)]:
            expected = static_scan(algo.graph, epsilon, mu)
            assert clusterings_equal(algo.clustering(epsilon, mu), expected), (epsilon, mu)

    def test_core_test_uses_kth_similarity(self, community_edges):
        algo = IndexedDynamicSCAN.from_edges(community_edges)
        expected = static_scan(algo.graph, 0.4, 3)
        for v in algo.graph.vertices():
            assert algo.is_core(v, 0.4, 3) == (v in expected.cores)

    def test_labelling_for_epsilon(self, community_edges):
        from repro.core.labelling import exact_labelling

        algo = IndexedDynamicSCAN.from_edges(community_edges)
        assert algo.labelling(0.4) == exact_labelling(algo.graph, 0.4)


class TestNeighbourOrder:
    def test_kth_similarity_out_of_range_is_zero(self):
        algo = IndexedDynamicSCAN.from_edges([(0, 1)])
        assert algo.is_core(0, 0.1, 5) is False

    def test_neighbours_at_least(self, community_edges):
        algo = IndexedDynamicSCAN.from_edges(community_edges)
        vertex = community_edges[0][0]
        order = algo.orders[vertex]
        listed = order.neighbours_at_least(0.4)
        expected = {
            w
            for w in algo.graph.neighbours(vertex)
            if jaccard_similarity(algo.graph, vertex, w) >= 0.4
        }
        assert set(listed) == expected

    def test_memory_includes_index_entries(self, community_edges):
        algo = IndexedDynamicSCAN.from_edges(community_edges)
        from repro.baselines.pscan import ExactDynamicSCAN

        plain = ExactDynamicSCAN.from_edges(community_edges, epsilon=0.4, mu=3)
        assert algo.memory_words() > plain.memory_words()
