"""Unit tests for the static SCAN baseline."""

from __future__ import annotations

import pytest

from repro.baselines.scan import scan_labelling, static_scan
from repro.core.labelling import exact_labelling
from repro.core.result import compute_clusters, clusterings_equal
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import planted_partition_graph
from repro.graph.similarity import SimilarityKind
from repro.instrumentation import OpCounter


class TestScanLabelling:
    def test_matches_exact_labelling(self, two_communities):
        assert scan_labelling(two_communities, 0.4) == exact_labelling(two_communities, 0.4)

    def test_counts_one_similarity_eval_per_edge(self, two_communities):
        counter = OpCounter()
        scan_labelling(two_communities, 0.4, counter=counter)
        assert counter.get("similarity_eval") == two_communities.num_edges


class TestStaticScan:
    def test_equals_fact1_on_exact_labels(self, two_communities):
        clustering = static_scan(two_communities, 0.4, 3)
        expected = compute_clusters(two_communities, exact_labelling(two_communities, 0.4), 3)
        assert clusterings_equal(clustering, expected)

    def test_recovers_planted_communities(self):
        edges = planted_partition_graph(3, 12, p_intra=0.85, p_inter=0.0, seed=2)
        graph = DynamicGraph(edges)
        clustering = static_scan(graph, 0.5, 3)
        assert clustering.num_clusters == 3
        blocks = [set(range(i * 12, (i + 1) * 12)) for i in range(3)]
        found = {frozenset(c) for c in clustering.clusters}
        for block in blocks:
            assert any(cluster <= block for cluster in found)

    def test_epsilon_one_only_keeps_twin_edges(self, two_communities):
        clustering = static_scan(two_communities, 1.0, 2)
        # with epsilon = 1 only edges whose endpoints have identical closed
        # neighbourhoods are similar, so clusters are rare and tiny
        for cluster in clustering.clusters:
            assert len(cluster) <= two_communities.num_vertices

    def test_mu_one_makes_every_similar_endpoint_core(self, two_communities):
        clustering = static_scan(two_communities, 0.4, 1)
        for u, v in two_communities.edges():
            from repro.graph.similarity import jaccard_similarity

            if jaccard_similarity(two_communities, u, v) >= 0.4:
                assert u in clustering.cores and v in clustering.cores

    def test_cosine_variant_runs(self, two_communities):
        clustering = static_scan(two_communities, 0.6, 3, SimilarityKind.COSINE)
        assert clustering.num_clusters >= 1

    def test_cosine_similar_set_contains_jaccard_similar_set(self, two_communities):
        """σ_c ≥ σ_j, so at equal ε the cosine labelling has at least the
        Jaccard-similar edges (Section 9.1 observation)."""
        from repro.core.labelling import EdgeLabel

        jac = scan_labelling(two_communities, 0.45, SimilarityKind.JACCARD)
        cos = scan_labelling(two_communities, 0.45, SimilarityKind.COSINE)
        for edge, label in jac.items():
            if label is EdgeLabel.SIMILAR:
                assert cos[edge] is EdgeLabel.SIMILAR
