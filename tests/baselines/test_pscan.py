"""Unit tests for the pSCAN-style exact dynamic baseline."""

from __future__ import annotations

import pytest

from repro.baselines.pscan import ExactDynamicSCAN
from repro.baselines.scan import static_scan
from repro.core.labelling import exact_labelling
from repro.core.result import clusterings_equal
from repro.graph.similarity import SimilarityKind
from repro.instrumentation import OpCounter
from repro.workloads.updates import InsertionStrategy, generate_update_sequence


class TestExactness:
    def test_labels_exact_after_insertions(self, community_edges):
        algo = ExactDynamicSCAN.from_edges(community_edges, epsilon=0.4, mu=3)
        assert algo.labels == exact_labelling(algo.graph, 0.4)

    def test_labels_exact_after_mixed_updates(self, community_edges):
        workload = generate_update_sequence(
            48, community_edges, 250, InsertionStrategy.DEGREE_RANDOM, eta=0.4, seed=1
        )
        algo = ExactDynamicSCAN(epsilon=0.4, mu=3)
        for update in workload.all_updates():
            algo.apply(update)
        assert algo.labels == exact_labelling(algo.graph, 0.4)

    def test_clustering_matches_static_scan(self, community_edges):
        algo = ExactDynamicSCAN.from_edges(community_edges, epsilon=0.4, mu=3)
        assert clusterings_equal(algo.clustering(), static_scan(algo.graph, 0.4, 3))

    def test_cosine_mode(self, community_edges):
        algo = ExactDynamicSCAN.from_edges(
            community_edges, epsilon=0.6, mu=3, similarity=SimilarityKind.COSINE
        )
        assert algo.labels == exact_labelling(algo.graph, 0.6, SimilarityKind.COSINE)

    def test_edge_label_lookup(self, community_edges):
        algo = ExactDynamicSCAN.from_edges(community_edges[:30], epsilon=0.4, mu=3)
        u, v = community_edges[0]
        assert algo.edge_label(u, v) is not None
        assert algo.edge_label(9999, 9998) is None


class TestCostModel:
    def test_per_update_work_scales_with_degree(self, community_edges):
        """pSCAN-style maintenance re-evaluates every incident edge: the
        similarity-eval count per update is about the endpoint degrees."""
        counter = OpCounter()
        algo = ExactDynamicSCAN.from_edges(community_edges, epsilon=0.4, mu=3, counter=counter)
        counter.reset()
        # pick the highest-degree vertex and add a fresh edge to it
        hub = max(algo.graph.vertices(), key=algo.graph.degree)
        algo.insert_edge(hub, 10_001)
        assert counter.get("similarity_eval") >= algo.graph.degree(hub)

    def test_memory_linear(self, community_edges):
        algo = ExactDynamicSCAN.from_edges(community_edges, epsilon=0.4, mu=3)
        assert algo.memory_words() > 0


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExactDynamicSCAN(epsilon=0.0, mu=3)
        with pytest.raises(ValueError):
            ExactDynamicSCAN(epsilon=0.5, mu=0)

    def test_updates_counted(self, community_edges):
        algo = ExactDynamicSCAN.from_edges(community_edges[:20], epsilon=0.4, mu=3)
        assert algo.updates_processed == 20
