"""Unit tests for the command line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph.io import save_edge_list
from repro.graph.generators import planted_partition_graph


class TestListDatasets:
    def test_lists_all(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "slashdot" in out
        assert "twitter" in out


class TestCluster:
    def test_cluster_registry_dataset(self, capsys):
        assert main(["cluster", "--dataset", "email", "--mu", "3"]) == 0
        out = capsys.readouterr().out
        assert "StrClu result" in out
        assert "clusters" in out

    def test_cluster_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "edges.txt"
        save_edge_list(planted_partition_graph(2, 10, 0.7, 0.0, seed=1), path)
        assert main(["cluster", "--edge-list", str(path), "--epsilon", "0.4", "--mu", "3"]) == 0
        assert "Top clusters" in capsys.readouterr().out

    def test_requires_exactly_one_source(self, capsys):
        assert main(["cluster"]) == 2
        assert main(["cluster", "--dataset", "email", "--edge-list", "x.txt"]) == 2

    def test_cosine_option(self, capsys):
        assert main(["cluster", "--dataset", "email", "--similarity", "cosine"]) == 0


class TestVersionAndUsage:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_dunder_version_exposed(self):
        import repro

        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_unknown_subcommand_exits_nonzero_with_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["definitely-not-a-command"])
        assert excinfo.value.code != 0
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "invalid choice" in err

    def test_service_subcommands_registered(self, capsys):
        for command in ("serve", "loadgen", "promote"):
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--help"])
            assert excinfo.value.code == 0
            assert command in capsys.readouterr().out

    def test_serve_rejects_invalid_engine_config_cleanly(self, capsys):
        assert main(["serve", "--batch-size", "0"]) == 2
        assert "batch_size" in capsys.readouterr().err

    def test_loadgen_reports_unreachable_server_cleanly(self, capsys):
        # nothing listens on this port: expect a clean exit 2, no traceback
        assert main(["loadgen", "--port", "1", "--updates", "1"]) == 2
        err = capsys.readouterr().err
        assert "no clustering service" in err


class TestReplicationCli:
    def test_serve_replica_of_requires_data_dir(self, capsys):
        assert main(["serve", "--replica-of", "127.0.0.1:1"]) == 2
        assert "--data-dir" in capsys.readouterr().err

    def test_serve_replica_of_rejects_dataset_preload(self, tmp_path, capsys):
        assert (
            main(
                [
                    "serve",
                    "--replica-of",
                    "127.0.0.1:1",
                    "--data-dir",
                    str(tmp_path),
                    "--dataset",
                    "email",
                ]
            )
            == 2
        )
        assert "read-only" in capsys.readouterr().err

    def test_serve_replica_of_rejects_shape_overrides(self, tmp_path, capsys):
        # a standby discovers backend/shards/params from its primary: the
        # CLI must refuse the combination (like the HTTP API does), never
        # silently discard tuning the operator believes applied
        assert (
            main(
                [
                    "serve",
                    "--replica-of",
                    "127.0.0.1:1",
                    "--data-dir",
                    str(tmp_path),
                    "--shards",
                    "4",
                    "--epsilon",
                    "0.9",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "--shards" in err and "--epsilon" in err

    def test_serve_unreachable_primary_exits_cleanly(self, tmp_path, capsys):
        # nothing listens on port 1: a clean exit 2, no traceback
        assert (
            main(
                [
                    "serve",
                    "--replica-of",
                    "127.0.0.1:1",
                    "--data-dir",
                    str(tmp_path),
                ]
            )
            == 2
        )
        assert "repro serve:" in capsys.readouterr().err

    def test_serve_primary_refusal_exits_cleanly(self, tmp_path, capsys):
        # the primary answers but refuses replication (its default tenant
        # is not durable): a clean exit 2 with the reason, no traceback
        from repro.core.config import StrCluParams
        from repro.service import BackgroundServer, EngineManager

        manager = EngineManager(StrCluParams(epsilon=0.5, mu=2, rho=0.0))
        with BackgroundServer(manager) as server:
            assert (
                main(
                    [
                        "serve",
                        "--replica-of",
                        f"127.0.0.1:{server.port}",
                        "--data-dir",
                        str(tmp_path),
                    ]
                )
                == 2
            )
            assert "not durable" in capsys.readouterr().err
        manager.close()

    def test_promote_reports_unreachable_server_cleanly(self, capsys):
        assert main(["promote", "--port", "1", "--tenant", "t"]) == 1
        assert "repro promote:" in capsys.readouterr().err

    def test_promote_round_trip_against_a_live_standby(self, tmp_path, capsys):
        from repro.core.config import StrCluParams
        from repro.core.dynelm import Update
        from repro.service import (
            BackgroundServer,
            EngineConfig,
            EngineManager,
            StandbyEngine,
        )

        params = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
        fast = EngineConfig(batch_size=8, flush_interval=0.005)
        manager = EngineManager(
            params,
            default_engine_config=fast,
            data_root=tmp_path / "primary",
            create_default=False,
        )
        manager.create("t")
        engine = manager.get("t")
        for update in [Update.insert(1, 2), Update.insert(2, 3), Update.insert(1, 3)]:
            engine.submit(update)
        engine.flush()
        with BackgroundServer(manager) as primary_server:
            standby = StandbyEngine(
                f"127.0.0.1:{primary_server.port}",
                "t",
                data_dir=tmp_path / "standby" / "t",
                config=fast,
                poll_interval=0.01,
            )
            standby_manager = EngineManager.adopt(standby, name="t")
            with standby:
                with BackgroundServer(standby_manager) as standby_server:
                    import time

                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline and standby.applied < 3:
                        time.sleep(0.02)
                    assert (
                        main(
                            [
                                "promote",
                                "--port",
                                str(standby_server.port),
                                "--tenant",
                                "t",
                            ]
                        )
                        == 0
                    )
                    out = capsys.readouterr().out
                    assert "promoted" in out and "epoch 1" in out
                    assert standby.promoted
        manager.close()


class TestExperiment:
    def test_registry_covers_every_table_and_figure(self):
        from repro.cli import EXPERIMENTS

        expected = {
            "table1", "table2", "table3", "fig4-6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12a", "fig12b",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "not-an-experiment"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestLoadgenSharding:
    def test_in_process_shards_apply_to_every_tenant_including_default(
        self, monkeypatch
    ):
        """Regression: --in-process --shards N must shape the eagerly
        created default tenant too, not only explicitly created ones."""
        import repro.service as service_module

        engine_types = {}
        original = service_module.EngineManager

        class SpyManager(original):
            def create(self, name, *args, **kwargs):
                engine = super().create(name, *args, **kwargs)
                engine_types[name] = type(engine).__name__
                return engine

        monkeypatch.setattr(service_module, "EngineManager", SpyManager)
        status = main(
            [
                "loadgen",
                "--in-process",
                "--shards",
                "2",
                "--tenant",
                "default",
                "--tenant",
                "other",
                "--dataset",
                "email",
                "--updates",
                "40",
                "--query-ratio",
                "0",
            ]
        )
        assert status == 0
        assert engine_types == {
            "default": "ShardedEngine",
            "other": "ShardedEngine",
        }

    def test_invalid_shard_count_is_rejected(self, capsys):
        for bad in ("0", "100000"):
            status = main(
                ["loadgen", "--in-process", "--shards", bad, "--dataset", "email"]
            )
            assert status == 2
            assert "shards must be in [1, 64]" in capsys.readouterr().err


class TestWatchdogCli:
    def test_registered_in_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["watchdog", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--targets" in out and "--quorum" in out

    def test_targets_are_required(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["watchdog"])
        assert excinfo.value.code == 2
        assert "--targets" in capsys.readouterr().err

    def test_invalid_quorum_exits_cleanly(self, capsys):
        status = main(
            ["watchdog", "--targets", "127.0.0.1:1", "--quorum", "0"]
        )
        assert status == 2
        assert "quorum" in capsys.readouterr().err

    def test_invalid_interval_exits_cleanly(self, capsys):
        status = main(
            ["watchdog", "--targets", "127.0.0.1:1", "--interval", "-1"]
        )
        assert status == 2
        assert "interval" in capsys.readouterr().err

    def test_malformed_target_exits_cleanly(self, capsys):
        # "not-a-url" is not HOST:PORT — clean exit 2, no traceback
        status = main(["watchdog", "--targets", "not-a-url"])
        assert status == 2
        assert "repro watchdog:" in capsys.readouterr().err


class TestBenchCli:
    def _matrix(self, tmp_path):
        import json

        path = tmp_path / "matrix.json"
        path.write_text(
            json.dumps({"specs": [{"name": "a", "shards": 1}, {"name": "b"}]})
        )
        return path

    def _floors(self, tmp_path, minimum=1.0):
        import json

        path = tmp_path / "floors.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "gates": [
                        {
                            "benchmark": "demo",
                            "checks": [{"metric": "x", "min": minimum}],
                        }
                    ],
                }
            )
        )
        return path

    def test_list_prints_expanded_specs(self, tmp_path, capsys):
        assert main(["bench", "--matrix", str(self._matrix(tmp_path)), "--list"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == ["a", "b"]

    def test_matrix_is_required(self, capsys):
        assert main(["bench"]) == 2
        assert "--matrix" in capsys.readouterr().err

    def test_malformed_matrix_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        assert main(["bench", "--matrix", str(path), "--list"]) == 2
        assert "repro bench:" in capsys.readouterr().err

    def test_gate_passes_and_fails(self, tmp_path, capsys):
        import json

        floors = self._floors(tmp_path, minimum=1.0)
        report = tmp_path / "BENCH_demo.json"
        report.write_text(json.dumps({"benchmark": "demo", "x": 2.0}))
        assert main(["bench", "gate", str(report), "--floors", str(floors)]) == 0
        assert "bench gate: OK" in capsys.readouterr().out

        report.write_text(json.dumps({"benchmark": "demo", "x": 0.5}))
        assert main(["bench", "gate", str(report), "--floors", str(floors)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_gate_json_format(self, tmp_path, capsys):
        import json

        floors = self._floors(tmp_path)
        report = tmp_path / "BENCH_demo.json"
        report.write_text(json.dumps({"benchmark": "demo", "x": 2.0}))
        status = main(
            ["bench", "gate", str(report), "--floors", str(floors), "--format", "json"]
        )
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["checks"][0]["metric"] == "x"

    def test_gate_check_floors_only(self, tmp_path, capsys):
        assert main(["bench", "gate", "--floors", str(self._floors(tmp_path)), "--check-floors"]) == 0
        assert "schema-valid" in capsys.readouterr().out

    def test_gate_rejects_malformed_floors(self, tmp_path, capsys):
        import json

        path = tmp_path / "floors.json"
        path.write_text(json.dumps({"schema_version": 1, "gates": [{}]}))
        assert main(["bench", "gate", "--floors", str(path), "--check-floors"]) == 2
        assert "repro bench gate:" in capsys.readouterr().err

    def test_gate_requires_reports_without_check_floors(self, tmp_path, capsys):
        assert main(["bench", "gate", "--floors", str(self._floors(tmp_path))]) == 2
