"""Property-based tests for distributed tracking (instance and tracker)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.dt.instance import DTInstance
from repro.dt.tracker import NaiveTracker, UpdateTracker


class TestDTInstanceProperties:
    @given(st.integers(1, 2000), st.lists(st.integers(0, 1), min_size=0, max_size=2000))
    @settings(max_examples=80, deadline=None)
    def test_maturity_exactly_at_tau(self, tau, increments):
        """The DT protocol is an exact counter: maturity fires on the tau-th
        increment, never earlier, never later."""
        dt = DTInstance(tau)
        for index, participant in enumerate(increments, start=1):
            if index > tau:
                break
            matured = dt.increment(participant)
            assert matured == (index == tau)

    @given(st.integers(9, 5000))
    @settings(max_examples=50, deadline=None)
    def test_slack_rule(self, tau):
        dt = DTInstance(tau)
        assert dt.slack == tau // 4
        assert dt.checkpoints == [dt.slack, dt.slack]


# operations over a small universe of vertices / edges
ops = st.lists(
    st.one_of(
        st.tuples(st.just("track"), st.integers(0, 7), st.integers(0, 7), st.integers(1, 30)),
        st.tuples(st.just("untrack"), st.integers(0, 7), st.integers(0, 7), st.just(0)),
        st.tuples(st.just("update"), st.integers(0, 7), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=300,
)


class TestTrackerEquivalenceProperty:
    @given(ops)
    @settings(max_examples=80, deadline=None)
    def test_heap_tracker_equals_naive_tracker(self, operations):
        """Whatever the interleaving of track/untrack/update operations, the
        heap-organised tracker reports exactly the same maturities as the
        per-edge-counter straw man."""
        heap_tracker = UpdateTracker()
        naive = NaiveTracker()
        for op, a, b, tau in operations:
            if op == "track":
                if a == b or heap_tracker.is_tracked(a, b):
                    continue
                heap_tracker.track(a, b, tau)
                naive.track(a, b, tau)
            elif op == "untrack":
                heap_tracker.untrack(a, b)
                naive.untrack(a, b)
            else:
                assert sorted(heap_tracker.register_update(a)) == sorted(
                    naive.register_update(a)
                )
        assert heap_tracker.num_tracked() == naive.num_tracked()
