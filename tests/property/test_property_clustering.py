"""Property-based tests for the clustering invariants of the paper.

Covers:

* the sandwich guarantee (Theorem 2.3) for arbitrary ρ-approximate labellings;
* structural well-formedness of every StrCluResult (cores in exactly one
  cluster, hubs in at least two, noise in none);
* exact-mode DynStrClu ≡ static SCAN under arbitrary update interleavings;
* cluster-group-by(Q) ≡ the restriction of the full clustering to Q.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines.scan import static_scan
from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.core.labelling import EdgeLabel, exact_labelling
from repro.core.result import clusterings_equal, compute_clusters
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.graph.similarity import jaccard_similarity

edge_lists = st.lists(
    st.tuples(st.integers(0, 13), st.integers(0, 13)), min_size=1, max_size=70
)


def build_graph(pairs):
    graph = DynamicGraph()
    for u, v in pairs:
        if u != v and not graph.has_edge(u, v):
            graph.insert_edge(u, v)
    return graph


class TestSandwichGuarantee:
    @given(edge_lists, st.floats(0.2, 0.6), st.integers(1, 4), st.floats(0.05, 0.45), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_theorem_2_3(self, pairs, epsilon, mu, rho, rng):
        """Any labelling that is valid under Definition 2.2 produces clusters
        sandwiched between the exact (1+ρ)ε and (1−ρ)ε clusterings."""
        graph = build_graph(pairs)
        upper_labels = exact_labelling(graph, (1 + rho) * epsilon)
        lower_labels = exact_labelling(graph, (1 - rho) * epsilon)
        # build a random valid ρ-approximate labelling: free choice in the band
        approx = {}
        for u, v in graph.edges():
            sigma = jaccard_similarity(graph, u, v)
            key = canonical_edge(u, v)
            if sigma >= (1 + rho) * epsilon:
                approx[key] = EdgeLabel.SIMILAR
            elif sigma < (1 - rho) * epsilon:
                approx[key] = EdgeLabel.DISSIMILAR
            else:
                approx[key] = rng.choice([EdgeLabel.SIMILAR, EdgeLabel.DISSIMILAR])
        upper = compute_clusters(graph, upper_labels, mu)
        lower = compute_clusters(graph, lower_labels, mu)
        middle = compute_clusters(graph, approx, mu)
        for cluster in upper.clusters:
            assert any(cluster <= candidate for candidate in middle.clusters)
        for cluster in middle.clusters:
            assert any(cluster <= candidate for candidate in lower.clusters)


class TestClusteringWellFormedness:
    @given(edge_lists, st.floats(0.2, 0.8), st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_roles_are_consistent(self, pairs, epsilon, mu):
        graph = build_graph(pairs)
        clustering = static_scan(graph, epsilon, mu)
        membership = clustering.membership()
        for core in clustering.cores:
            assert len(membership.get(core, [])) == 1
        for hub in clustering.hubs:
            assert len(membership[hub]) >= 2
            assert hub not in clustering.cores
        for outlier in clustering.noise:
            assert outlier not in membership
        # every cluster contains at least one core
        for cluster in clustering.clusters:
            assert cluster & clustering.cores

    @given(edge_lists, st.floats(0.2, 0.8), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_every_vertex_accounted_for(self, pairs, epsilon, mu):
        graph = build_graph(pairs)
        clustering = static_scan(graph, epsilon, mu)
        clustered = set().union(*clustering.clusters) if clustering.clusters else set()
        everything = clustered | clustering.noise
        assert everything == set(graph.vertices())


# update scripts: pairs toggle edge presence
update_scripts = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)), min_size=1, max_size=120
)


class TestExactDynamicEquivalence:
    @given(update_scripts, st.floats(0.25, 0.7), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_dynstrclu_exact_mode_equals_scan(self, script, epsilon, mu):
        params = StrCluParams(epsilon=epsilon, mu=mu, rho=0.0)
        algo = DynStrClu(params, connectivity_backend="hdt")
        present = set()
        for u, v in script:
            if u == v:
                continue
            key = canonical_edge(u, v)
            if key in present:
                algo.apply(Update.delete(*key))
                present.discard(key)
            else:
                algo.apply(Update.insert(*key))
                present.add(key)
        reference = static_scan(algo.graph, epsilon, mu)
        assert clusterings_equal(algo.clustering(), reference)

    @given(update_scripts, st.floats(0.25, 0.7), st.integers(1, 4), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_group_by_equals_clustering_restriction(self, script, epsilon, mu, rng):
        params = StrCluParams(epsilon=epsilon, mu=mu, rho=0.0)
        algo = DynStrClu(params)
        present = set()
        for u, v in script:
            if u == v:
                continue
            key = canonical_edge(u, v)
            if key in present:
                algo.apply(Update.delete(*key))
                present.discard(key)
            else:
                algo.apply(Update.insert(*key))
                present.add(key)
        vertices = list(algo.graph.vertices())
        if not vertices:
            return
        query = rng.sample(vertices, min(6, len(vertices)))
        clustering = algo.clustering()
        expected = sorted(
            sorted(map(repr, cluster & set(query)))
            for cluster in clustering.clusters
            if cluster & set(query)
        )
        got = sorted(sorted(map(repr, g)) for g in algo.group_by(query).as_sets())
        assert got == expected
