"""Property-based tests for the dynamic graph and similarity substrate."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.graph.similarity import cosine_similarity, jaccard_similarity

# a list of (u, v) pairs over a small vertex universe; duplicates and self
# loops are filtered during interpretation
edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=0, max_size=80
)


def build_graph(pairs):
    graph = DynamicGraph()
    mirror = set()
    for u, v in pairs:
        if u == v:
            continue
        key = canonical_edge(u, v)
        if key in mirror:
            continue
        graph.insert_edge(u, v)
        mirror.add(key)
    return graph, mirror


class TestGraphProperties:
    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_edge_count_and_degree_sum(self, pairs):
        graph, mirror = build_graph(pairs)
        assert graph.num_edges == len(mirror)
        assert sum(graph.degree(v) for v in graph.vertices()) == 2 * len(mirror)

    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_neighbourhood_symmetry(self, pairs):
        graph, _ = build_graph(pairs)
        for u in graph.vertices():
            for v in graph.neighbours(u):
                assert u in graph.neighbours(v)

    @given(edge_lists, st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_delete_everything_leaves_empty_graph(self, pairs, rng):
        graph, mirror = build_graph(pairs)
        edges = list(mirror)
        rng.shuffle(edges)
        for u, v in edges:
            graph.delete_edge(u, v)
        assert graph.num_edges == 0
        assert all(graph.degree(v) == 0 for v in graph.vertices())


class TestSimilarityProperties:
    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_similarities_bounded_and_cosine_dominates(self, pairs):
        graph, mirror = build_graph(pairs)
        for u, v in mirror:
            jac = jaccard_similarity(graph, u, v)
            cos = cosine_similarity(graph, u, v)
            assert 0.0 < jac <= 1.0  # adjacent vertices share at least themselves
            assert 0.0 < cos <= 1.0 + 1e-12
            assert cos + 1e-12 >= jac

    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_similarity_symmetry(self, pairs):
        graph, mirror = build_graph(pairs)
        for u, v in mirror:
            assert jaccard_similarity(graph, u, v) == jaccard_similarity(graph, v, u)
            assert cosine_similarity(graph, u, v) == cosine_similarity(graph, v, u)

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_inserting_common_neighbour_never_lowers_intersection(self, pairs):
        graph, mirror = build_graph(pairs)
        if not mirror:
            return
        u, v = next(iter(mirror))
        before = graph.common_closed_neighbours(u, v)
        w = 999
        graph.insert_edge(u, w)
        graph.insert_edge(v, w)
        after = graph.common_closed_neighbours(u, v)
        assert after == before + 1
