"""Property tests: incremental view capture is exactly full capture.

Two layers:

* **Patch-level** (dynstrclu, the one delta-tracking backend): drive a
  random insert/delete stream in micro-batches, patch the view from each
  drained flip set, and after every batch compare against a fresh full
  :meth:`ClusteringView.capture` of the same maintainer — ``cluster_of``
  arity and the induced cluster family over the whole universe, ``group_by``,
  ``stats`` (everything but the wall-clock timestamp) and the materialised
  :class:`Clustering` must all coincide.  Cluster keys themselves are opaque
  and may differ (full capture re-keys from zero), so equality is asserted
  up to the key bijection the family comparison induces.

* **Engine-level** (every registered backend, including the full-rebuild
  fallbacks): push the stream through :class:`ClusteringEngine` and compare
  the published view — built incrementally for dynstrclu, via full captures
  for the others — against a direct capture of the quiesced maintainer.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import available_backends, make_clusterer
from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.result import clusterings_equal
from repro.service.engine import ClusteringEngine, EngineConfig
from repro.service.views import ClusteringView

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)

UNIVERSE = 10


@st.composite
def update_streams(draw):
    """A random applicable stream: toggles over a small vertex universe."""
    n = draw(st.integers(min_value=4, max_value=UNIVERSE))
    length = draw(st.integers(min_value=1, max_value=60))
    present = set()
    stream = []
    for _ in range(length):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in present:
            present.discard(edge)
            stream.append(Update.delete(*edge))
        else:
            present.add(edge)
            stream.append(Update.insert(*edge))
    return stream


def _families(view: ClusteringView, universe) -> set:
    by_key = {}
    for v in universe:
        for key in view.cluster_of(v):
            by_key.setdefault(key, set()).add(v)
    return {frozenset(members) for members in by_key.values()}


def assert_views_equivalent(incremental, full, universe):
    assert _families(incremental, universe) == _families(full, universe)
    for v in universe:
        assert len(incremental.cluster_of(v)) == len(full.cluster_of(v)), v
    groups_a = {frozenset(g) for g in incremental.group_by(universe).as_sets()}
    groups_b = {frozenset(g) for g in full.group_by(universe).as_sets()}
    assert groups_a == groups_b
    stats_a = incremental.stats()
    stats_b = full.stats()
    for key in ("view_version", "num_vertices", "num_edges", "clusters",
                "cores", "hubs", "noise", "largest_cluster"):
        assert stats_a[key] == stats_b[key], key
    assert clusterings_equal(incremental.clustering, full.clustering)


@settings(max_examples=25, deadline=None)
@given(stream=update_streams(), batch_size=st.integers(min_value=1, max_value=7))
def test_patched_view_equals_full_capture_every_batch(stream, batch_size):
    from repro.core.dynstrclu import DynStrClu

    algo = DynStrClu(PARAMS)
    view = ClusteringView.empty()
    universe = list(range(UNIVERSE))
    version = 0
    for start in range(0, len(stream), batch_size):
        for update in stream[start : start + batch_size]:
            algo.apply(update)
            version += 1
        flips = algo.drain_view_delta().flips
        patched = view.patched(algo, flips, version=version)
        if patched is None:  # bucket growth: re-base, exactly like the engine
            patched = ClusteringView.capture(algo, version)
        assert_views_equivalent(patched, ClusteringView.capture(algo, version), universe)
        view = patched


@pytest.mark.parametrize("backend", sorted(available_backends()))
@settings(max_examples=8, deadline=None)
@given(stream=update_streams(), batch_size=st.integers(min_value=1, max_value=7))
def test_engine_view_equals_full_capture(backend, stream, batch_size):
    config = EngineConfig(batch_size=batch_size, flush_interval=0.001)
    with ClusteringEngine(PARAMS, config=config, backend=backend) as engine:
        for update in stream:
            engine.submit(update)
        assert engine.flush(timeout=30)
        view = engine.view()
        reference = ClusteringView.capture(engine.maintainer, engine.applied)
    assert_views_equivalent(view, reference, list(range(UNIVERSE)))
    if backend == "dynstrclu" and stream:
        assert engine.metrics.get("view_capture_incremental") > 0
    elif stream:
        assert engine.metrics.get("view_capture_full") > 0
        assert engine.metrics.get("view_capture_incremental") == 0