"""Property tests: a standby replica is indistinguishable at ack boundaries.

The replication design note (docs/API.md) claims that at every acked
position ``P`` the standby's clustering equals the primary's — which, by
PR 1's engine-equivalence property, equals sequential DynStrClu over the
first ``P`` updates.  These tests drive a real primary server + standby
through random applicable streams in batches and check the claim at
**every** acked batch boundary, for the exact maintainer and — within the
ρ-approximation band — for the approximate one.
"""

from __future__ import annotations

import math
import tempfile
import time
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.core.labelling import EdgeLabel
from repro.graph.similarity import structural_similarity
from repro.service import (
    BackgroundServer,
    EngineConfig,
    EngineManager,
    StandbyEngine,
)

EXACT_PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)

#: Approximate-mode bundle (mirrors the backend-equivalence suite): the
#: large sample cap keeps the Hoeffding radius far below the asserted
#: slack, so the band check is deterministic for all practical purposes.
APPROX_PARAMS = StrCluParams(
    epsilon=0.5, mu=2, rho=0.4, delta_star=0.001, seed=3, max_samples=4096
)
BAND_SLACK = math.sqrt(math.log(2.0 / 1e-5) / (2.0 * 4096)) + 0.01

FAST = EngineConfig(batch_size=8, flush_interval=0.005)


@st.composite
def update_streams(draw):
    """A random applicable stream: toggles over a small vertex universe."""
    n = draw(st.integers(min_value=4, max_value=10))
    length = draw(st.integers(min_value=1, max_value=36))
    present = set()
    stream = []
    for _ in range(length):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in present:
            present.discard(edge)
            stream.append(Update.delete(*edge))
        else:
            present.add(edge)
            stream.append(Update.insert(*edge))
    return stream


def _wait_until(predicate, timeout: float = 20.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _groups(target, universe):
    return {frozenset(group) for group in target.group_by(universe).as_sets()}


@settings(max_examples=6, deadline=None)
@given(stream=update_streams(), batch=st.integers(min_value=1, max_value=9))
def test_standby_equals_sequential_primary_at_every_acked_boundary(stream, batch):
    """Exact mode: replay == sequential DynStrClu at each ack boundary."""
    universe = list(range(12))
    reference = DynStrClu(EXACT_PARAMS)
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        manager = EngineManager(
            EXACT_PARAMS,
            default_engine_config=FAST,
            data_root=tmp_path / "primary",
            create_default=False,
        )
        manager.create("t")
        engine = manager.get("t")
        with BackgroundServer(manager) as server:
            standby = StandbyEngine(
                f"127.0.0.1:{server.port}",
                "t",
                data_dir=tmp_path / "standby",
                config=FAST,
                poll_interval=0.005,
            ).start()
            try:
                for offset in range(0, len(stream), batch):
                    for update in stream[offset: offset + batch]:
                        engine.submit(update)
                        reference.apply(update)
                    engine.flush()
                    target = engine.applied
                    # the acked boundary: the standby's position reaches
                    # the primary's applied count for this prefix
                    assert _wait_until(lambda: standby.applied >= target), (
                        f"standby stalled at {standby.applied}/{target}"
                    )
                    assert standby.applied == target == reference.updates_processed
                    assert _groups(standby, universe) == {
                        frozenset(g) for g in reference.group_by(universe).as_sets()
                    }
            finally:
                standby.close()
        manager.close()


@settings(max_examples=4, deadline=None)
@given(stream=update_streams())
def test_approximate_standby_stays_within_the_rho_band(stream):
    """Approximate mode: the replica's maintained labels respect the band.

    A standby seeded from a snapshot does not inherit the primary's DT
    sampling state, so exact label equality is not guaranteed — the
    ρ-approximation band (the same tolerance the backend-equivalence suite
    grants the approximate maintainer) is the correct contract.
    """
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        manager = EngineManager(
            APPROX_PARAMS,
            default_engine_config=FAST,
            data_root=tmp_path / "primary",
            create_default=False,
        )
        manager.create("t")
        engine = manager.get("t")
        for update in stream:
            engine.submit(update)
        engine.flush()
        with BackgroundServer(manager) as server:
            standby = StandbyEngine(
                f"127.0.0.1:{server.port}",
                "t",
                data_dir=tmp_path / "standby",
                config=FAST,
                poll_interval=0.005,
            ).start()
            try:
                target = engine.applied
                assert _wait_until(lambda: standby.applied >= target)
                assert standby.applied == target
                maintainer = standby.engine.maintainer
                graph = maintainer.graph
                epsilon = APPROX_PARAMS.epsilon
                lower = epsilon * (1.0 - APPROX_PARAMS.rho)
                for (u, v), label in maintainer.labels.items():
                    sigma = structural_similarity(
                        graph, u, v, APPROX_PARAMS.similarity
                    )
                    if label is EdgeLabel.SIMILAR:
                        assert sigma >= lower - BAND_SLACK, (u, v, sigma, label)
                    else:
                        assert sigma < epsilon + BAND_SLACK, (u, v, sigma, label)
            finally:
                standby.close()
        manager.close()
