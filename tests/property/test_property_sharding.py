"""Property test: the sharded engine is indistinguishable from one engine.

For random applicable insert/delete streams and ``shards ∈ {2, 3, 4}``:

* **Exact backends (ρ = 0)** — a :class:`ShardedEngine` running any
  registered backend produces, after a flush, *exactly* the clustering and
  group-by of a sequential single-engine DynStrClu run over the same
  stream: hash partitioning, boundary-edge replication, scoped labelling
  and the scatter-gather merge are jointly lossless.
* **Approximate mode (ρ > 0)** — mirroring the backend-equivalence suite,
  the merged result must stay within the ρ-band of the exact similarities:
  every merged core has ≥ μ neighbours at σ ≥ ε(1−ρ) − slack, and every
  vertex with ≥ μ neighbours at σ ≥ ε + slack is a merged core, where the
  slack covers the estimator's Hoeffding radius at the configured sample
  cap.  (Boundary edges are resolved with the *exact* similarity by the
  merge, which is trivially inside the band.)
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.api import available_backends
from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.core.result import clusterings_equal
from repro.graph.similarity import structural_similarity
from repro.service.engine import EngineConfig
from repro.service.sharding import ShardedEngine

EXACT_PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)

#: Approximate-mode bundle mirroring the backend-equivalence suite: the
#: large sample cap keeps the Hoeffding radius far below the asserted
#: slack, so the band check is deterministic for all practical purposes.
APPROX_PARAMS = StrCluParams(
    epsilon=0.5, mu=2, rho=0.4, delta_star=0.001, seed=3, max_samples=4096
)
BAND_SLACK = math.sqrt(math.log(2.0 / 1e-5) / (2.0 * 4096)) + 0.01


@st.composite
def update_streams(draw):
    """A random applicable stream: toggles over a small vertex universe."""
    n = draw(st.integers(min_value=4, max_value=10))
    length = draw(st.integers(min_value=1, max_value=40))
    present = set()
    stream = []
    for _ in range(length):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in present:
            present.discard(edge)
            stream.append(Update.delete(*edge))
        else:
            present.add(edge)
            stream.append(Update.insert(*edge))
    return stream


def run_sharded(stream, shards, backend, params):
    """Drive a sharded engine over ``stream``; returns the quiescent view."""
    config = EngineConfig(shards=shards, batch_size=16, flush_interval=0.005)
    with ShardedEngine(params, config=config, backend=backend) as engine:
        for update in stream:
            engine.submit(update)
        engine.flush(timeout=60)
        return engine.view()


@settings(max_examples=12, deadline=None)
@given(stream=update_streams(), shards=st.sampled_from([2, 3, 4]))
def test_sharded_equals_sequential_dynstrclu_for_every_exact_backend(
    stream, shards
):
    reference = DynStrClu(EXACT_PARAMS)
    for update in stream:
        reference.apply(update)
    expected_clustering = reference.clustering()
    query = list(range(12))
    expected_groups = {
        frozenset(g) for g in reference.group_by(query).as_sets()
    }
    expected_membership = expected_clustering.membership()

    for backend in available_backends():
        view = run_sharded(stream, shards, backend, EXACT_PARAMS)
        merged = view.clustering
        assert clusterings_equal(merged, expected_clustering), (backend, shards)
        groups = {frozenset(g) for g in view.group_by(query).as_sets()}
        assert groups == expected_groups, (backend, shards)
        for v in query:
            expected_count = len(expected_membership.get(v, []))
            assert len(view.cluster_of(v)) == expected_count, (backend, shards)


@settings(max_examples=8, deadline=None)
@given(stream=update_streams(), shards=st.sampled_from([2, 3, 4]))
def test_sharded_approximate_mode_stays_inside_the_rho_band(stream, shards):
    # the exact graph (for ground-truth similarities)
    reference = DynStrClu(
        StrCluParams(epsilon=0.5, mu=2, rho=0.0)
    )
    for update in stream:
        reference.apply(update)
    graph = reference.graph
    epsilon, mu, rho = (
        APPROX_PARAMS.epsilon,
        APPROX_PARAMS.mu,
        APPROX_PARAMS.rho,
    )
    lo = epsilon * (1.0 - rho) - BAND_SLACK
    hi = epsilon + BAND_SLACK

    view = run_sharded(stream, shards, "dynstrclu", APPROX_PARAMS)
    merged = view.clustering

    for core in merged.cores:
        # a merged core earned its count from similar-labelled edges, each
        # of which must have true similarity above the band floor
        strong_enough = [
            w
            for w in graph.neighbours(core)
            if structural_similarity(graph, core, w, APPROX_PARAMS.similarity) >= lo
        ]
        assert len(strong_enough) >= mu, (core, shards)

    for v in graph.vertices():
        # a vertex with mu unambiguously-similar neighbours cannot have
        # been denied core status by any valid rho-approximate labelling
        certain = [
            w
            for w in graph.neighbours(v)
            if structural_similarity(graph, v, w, APPROX_PARAMS.similarity) >= hi
        ]
        if len(certain) >= mu:
            assert v in merged.cores, (v, shards)
