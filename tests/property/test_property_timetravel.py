"""Property test: ``as_of=P`` equals a fresh sequential replay truncated at P.

For random applicable update streams and random checkpoint cadences, the
:class:`~repro.service.timetravel.HistoricalViewStore` must reconstruct —
anchor snapshot + retained-WAL replay — exactly the clustering a fresh
sequential DynStrClu produces over the stream prefix of length P:

* **1 shard** — checked at *every* position ``0..len(stream)`` (each
  position is a batch boundary for some batching, so this subsumes the
  boundary set of any run), walking positions in ascending order so the
  cached replayer is continued, and in a second pass re-querying cold
  positions so anchor re-seeding is exercised too.
* **4 shards** — checked at every quiescent chunk boundary: the per-shard
  position tuple recorded after each flushed chunk must replay to exactly
  the sequential clustering of that prefix (the same equivalence the live
  scatter-gather merge guarantees).
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.core.result import clusterings_equal
from repro.service.engine import ClusteringEngine, EngineConfig
from repro.service.sharding import ShardedEngine
from repro.service.timetravel import HistoricalViewStore

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)


@st.composite
def update_streams(draw):
    """A random applicable stream: toggles over a small vertex universe."""
    n = draw(st.integers(min_value=4, max_value=10))
    length = draw(st.integers(min_value=1, max_value=30))
    present = set()
    stream = []
    for _ in range(length):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in present:
            present.discard(edge)
            stream.append(Update.delete(*edge))
        else:
            present.add(edge)
            stream.append(Update.insert(*edge))
    return stream


def _references(stream):
    """Sequential DynStrClu clusterings at every prefix length 0..len."""
    algo = DynStrClu(PARAMS)
    clusterings = [algo.clustering()]
    for update in stream:
        algo.apply(update)
        clusterings.append(algo.clustering())
    return clusterings


@settings(max_examples=10, deadline=None)
@given(stream=update_streams(), checkpoint_every=st.integers(2, 12))
def test_as_of_equals_truncated_replay_single_shard(stream, checkpoint_every):
    clusterings = _references(stream)
    tmp = Path(tempfile.mkdtemp(prefix="tt-prop-"))
    try:
        config = EngineConfig(
            batch_size=4,
            flush_interval=0.01,
            checkpoint_every=checkpoint_every,
            wal_retain_segments=99,  # retention is not under test here
        )
        with ClusteringEngine(PARAMS, config=config, data_dir=tmp) as engine:
            engine.start()
            for update in stream:
                engine.submit(update)
            assert engine.flush(timeout=30)
            assert engine.applied == len(stream)
            store = HistoricalViewStore(engine, capacity=4)
            # ascending: every query continues the cached replayer
            for position in range(len(stream) + 1):
                view = store.view_at((position,))
                assert view.version == position
                assert clusterings_equal(view.clustering, clusterings[position])
            # cold re-queries: positions behind the replayer re-anchor
            for position in (0, len(stream) // 2):
                view = store.view_at((position,))
                assert clusterings_equal(view.clustering, clusterings[position])
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


@settings(max_examples=6, deadline=None)
@given(
    stream=update_streams(),
    checkpoint_every=st.integers(2, 12),
    chunk=st.integers(3, 9),
)
def test_as_of_equals_truncated_replay_four_shards(stream, checkpoint_every, chunk):
    clusterings = _references(stream)
    tmp = Path(tempfile.mkdtemp(prefix="tt-prop-"))
    try:
        config = EngineConfig(
            batch_size=4,
            flush_interval=0.01,
            checkpoint_every=checkpoint_every,
            wal_retain_segments=99,
            shards=4,
        )
        with ShardedEngine(PARAMS, config=config, data_dir=tmp) as engine:
            engine.start()
            boundaries = []  # (prefix length, per-shard position tuple)
            for start in range(0, len(stream), chunk):
                for update in stream[start : start + chunk]:
                    engine.submit(update)
                assert engine.flush(timeout=30)
                prefix = min(start + chunk, len(stream))
                boundaries.append(
                    (prefix, tuple(shard.applied for shard in engine.shards))
                )
            store = HistoricalViewStore(engine, capacity=4)
            for prefix, positions in boundaries:
                view = store.view_at(positions)
                assert clusterings_equal(view.clustering, clusterings[prefix])
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
