"""Property-based tests for persistence and sliding-window invariants.

Invariants covered (extending DESIGN.md section 5):

9.  **Snapshot round trip** — for any update sequence, snapshotting the
    maintained state, serialising it to JSON, parsing it back and restoring
    yields exactly the same clustering, and the restored instance stays
    equivalent to the original under further updates.
10. **Update-log round trip** — any update sequence survives a write/read
    cycle through the text log format unchanged.
11. **Sliding window ≡ recompute** — after any timestamped interaction
    stream, the window-maintained clustering equals a from-scratch build on
    the currently live edges.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import StrCluParams
from repro.core.dynelm import Update, UpdateKind
from repro.core.dynstrclu import DynStrClu
from repro.persistence.snapshot import StateSnapshot, restore_dynstrclu, take_snapshot
from repro.persistence.updatelog import format_update, parse_update_line
from repro.streaming.window import SlidingWindowClustering

EXACT = StrCluParams(epsilon=0.4, mu=2, rho=0.0)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def _apply_random_updates(algo: DynStrClu, seed: int, steps: int, n: int = 12) -> list:
    """Apply a reproducible random mix of insertions and deletions."""
    rng = random.Random(seed)
    applied = []
    for _ in range(steps):
        u, v = rng.sample(range(n), 2)
        if algo.graph.has_edge(u, v):
            update = Update.delete(u, v)
        else:
            update = Update.insert(u, v)
        algo.apply(update)
        applied.append(update)
    return applied


update_sequences = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=1, max_value=60),  # steps
)


class TestSnapshotRoundTripProperty:
    @settings(max_examples=25, deadline=None)
    @given(update_sequences)
    def test_restore_reproduces_clustering(self, spec):
        seed, steps = spec
        algo = DynStrClu(EXACT)
        _apply_random_updates(algo, seed, steps)

        snapshot = StateSnapshot.from_json(take_snapshot(algo).to_json())
        restored = restore_dynstrclu(snapshot)

        assert restored.graph.num_edges == algo.graph.num_edges
        assert restored.labels == algo.labels
        assert restored.cores == algo.cores
        assert restored.clustering().as_frozen() == algo.clustering().as_frozen()

    @settings(max_examples=15, deadline=None)
    @given(update_sequences, st.integers(min_value=1, max_value=30))
    def test_restored_instance_tracks_further_updates(self, spec, extra_steps):
        seed, steps = spec
        algo = DynStrClu(EXACT)
        _apply_random_updates(algo, seed, steps)
        restored = restore_dynstrclu(take_snapshot(algo))

        # both instances see the same continuation of the stream
        rng = random.Random(seed + 999)
        for _ in range(extra_steps):
            u, v = rng.sample(range(12), 2)
            if algo.graph.has_edge(u, v):
                algo.delete_edge(u, v)
                restored.delete_edge(u, v)
            else:
                algo.insert_edge(u, v)
                restored.insert_edge(u, v)
        assert restored.clustering().as_frozen() == algo.clustering().as_frozen()


class TestUpdateLogProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([UpdateKind.INSERT, UpdateKind.DELETE]),
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=501, max_value=1000),
            ),
            max_size=40,
        )
    )
    def test_format_parse_round_trip(self, raw):
        updates = [Update(kind, u, v) for kind, u, v in raw]
        for update in updates:
            assert parse_update_line(format_update(update)) == update


class TestSlidingWindowProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        ),
        st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
    )
    def test_window_clustering_equals_recompute(self, raw_events, window):
        events = sorted(
            ((u, v, t) for u, v, t in raw_events if u != v),
            key=lambda item: item[2],
        )
        swc = SlidingWindowClustering(EXACT, window=window)
        clock = 0.0
        for u, v, gap in events:
            clock += gap
            swc.observe(u, v, time=clock)

        reference = DynStrClu.from_edges(swc.live_edges(), EXACT)
        assert swc.clustering().as_frozen() == reference.clustering().as_frozen()
        assert swc.num_live_edges == reference.graph.num_edges
