"""Property test: the engine's micro-batching path is an equivalence oracle.

Whatever the batch size, flush timing and queue interleaving, pushing an
update stream through :class:`ClusteringEngine` must produce exactly the
clustering of applying the same stream sequentially through
:class:`DynStrClu` — batching is an execution strategy, not a semantics
change.  Streams are random shuffles of insert/delete operations over a
small vertex universe (maintained as set-toggles so every generated update
is applicable), which exercises deletions, re-insertions and core flips.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.core.result import clusterings_equal
from repro.service.engine import ClusteringEngine, EngineConfig

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)


@st.composite
def update_streams(draw):
    """A random applicable stream: toggles over a small vertex universe."""
    n = draw(st.integers(min_value=4, max_value=10))
    length = draw(st.integers(min_value=1, max_value=50))
    present = set()
    stream = []
    for _ in range(length):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in present:
            present.discard(edge)
            stream.append(Update.delete(*edge))
        else:
            present.add(edge)
            stream.append(Update.insert(*edge))
    return stream


@settings(max_examples=25, deadline=None)
@given(stream=update_streams(), batch_size=st.integers(min_value=1, max_value=9))
def test_micro_batched_engine_equals_sequential_dynstrclu(stream, batch_size):
    sequential = DynStrClu(PARAMS)
    for update in stream:
        sequential.apply(update)

    config = EngineConfig(batch_size=batch_size, flush_interval=0.001)
    with ClusteringEngine(PARAMS, config=config) as engine:
        for update in stream:
            engine.submit(update)
        assert engine.flush(timeout=30)
        view = engine.view()

    assert engine.applied == len(stream)
    assert view.version == len(stream)
    assert clusterings_equal(view.clustering, sequential.clustering())

    # and the snapshot answers group-by exactly like the live maintainer
    query = list(range(10))
    assert {frozenset(g) for g in view.group_by(query).as_sets()} == {
        frozenset(g) for g in sequential.group_by(query).as_sets()
    }
