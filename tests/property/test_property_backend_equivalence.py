"""Property test: every registered backend is an equivalence class member.

The backend registry promises that ``make_clusterer(name, params)`` yields
an interchangeable maintainer.  For random applicable update streams
(set-toggles over a small vertex universe, exercising deletions,
re-insertions and core flips):

* **Exact mode (ρ = 0)** — every registered backend produces *exactly* the
  clustering of sequential DynStrClu, and answers group-by identically.
* **Approximate mode (ρ > 0)** — ``dynelm`` shares DynStrClu's labelling
  machinery and must still match it exactly (same params, same seed, same
  stream ⇒ same sampling decisions), while the sampled labelling itself
  must stay within the ρ-approximation band of the exact structural
  similarity: an edge labelled SIMILAR has σ ≥ ε(1−ρ) − slack, an edge
  labelled DISSIMILAR has σ < ε + slack, where the slack covers the
  estimator's Hoeffding radius at the configured sample cap.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.api import available_backends, make_clusterer
from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.core.labelling import EdgeLabel
from repro.core.result import clusterings_equal
from repro.graph.similarity import structural_similarity

EXACT_PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)

#: Approximate-mode bundle: a large sample cap keeps the estimator's
#: Hoeffding radius far below the asserted slack, so the band check is
#: deterministic for all practical purposes (failure probability per
#: invocation < 1e-8).
APPROX_PARAMS = StrCluParams(
    epsilon=0.5, mu=2, rho=0.4, delta_star=0.001, seed=3, max_samples=4096
)

#: Estimator slack granted on top of the ρ-band: the Hoeffding radius at
#: L = 4096 samples and δ = 1e-5 is sqrt(ln(2/δ) / (2 L)) ≈ 0.039.
BAND_SLACK = math.sqrt(math.log(2.0 / 1e-5) / (2.0 * 4096)) + 0.01


@st.composite
def update_streams(draw):
    """A random applicable stream: toggles over a small vertex universe."""
    n = draw(st.integers(min_value=4, max_value=10))
    length = draw(st.integers(min_value=1, max_value=40))
    present = set()
    stream = []
    for _ in range(length):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in present:
            present.discard(edge)
            stream.append(Update.delete(*edge))
        else:
            present.add(edge)
            stream.append(Update.insert(*edge))
    return stream


@settings(max_examples=20, deadline=None)
@given(stream=update_streams())
def test_every_backend_equals_sequential_dynstrclu_in_exact_mode(stream):
    reference = DynStrClu(EXACT_PARAMS)
    for update in stream:
        reference.apply(update)
    expected_clustering = reference.clustering()
    query = list(range(12))
    expected_groups = {
        frozenset(g) for g in reference.group_by(query).as_sets()
    }

    for name in available_backends():
        algo = make_clusterer(name, EXACT_PARAMS)
        for update in stream:
            algo.apply(update)
        assert algo.updates_processed == len(stream), name
        assert clusterings_equal(algo.clustering(), expected_clustering), name
        assert {
            frozenset(g) for g in algo.group_by(query).as_sets()
        } == expected_groups, name


@settings(max_examples=15, deadline=None)
@given(stream=update_streams())
def test_dynelm_backend_matches_dynstrclu_in_approximate_mode(stream):
    """Same params/seed/stream ⇒ the same sampling decisions and clustering."""
    reference = DynStrClu(APPROX_PARAMS)
    elm_backend = make_clusterer("dynelm", APPROX_PARAMS)
    for update in stream:
        reference.apply(update)
        elm_backend.apply(update)
    assert clusterings_equal(elm_backend.clustering(), reference.clustering())


@settings(max_examples=15, deadline=None)
@given(stream=update_streams())
def test_approximate_labelling_stays_within_rho_band_of_exact(stream):
    """DynStrClu's ρ-approximate labels vs the exact similarity (tolerance).

    The exact backends (scan-exact / pscan / hscan) answer from the true
    similarity; the approximate maintainer is allowed to deviate only
    inside the band [ε(1−ρ), ε).  Assert that every maintained label
    respects the band (with the estimator slack), which is exactly the
    sense in which the approximate backend is "equal within tolerance".
    """
    approx = DynStrClu(APPROX_PARAMS)
    for update in stream:
        approx.apply(update)

    epsilon = APPROX_PARAMS.epsilon
    lower = epsilon * (1.0 - APPROX_PARAMS.rho)
    graph = approx.graph
    for (u, v), label in approx.labels.items():
        sigma = structural_similarity(graph, u, v, APPROX_PARAMS.similarity)
        if label is EdgeLabel.SIMILAR:
            assert sigma >= lower - BAND_SLACK, (u, v, sigma, label)
        else:
            assert sigma < epsilon + BAND_SLACK, (u, v, sigma, label)
