"""Property-based tests: every connectivity backend answers like a recomputation."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.connectivity.euler_tour import EulerTourConnectivity
from repro.connectivity.hdt import HDTConnectivity
from repro.connectivity.union_find import UnionFindConnectivity

# a script of edge toggles over a small vertex universe: each pair flips the
# presence of that edge
scripts = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)), min_size=1, max_size=200
)


def run_script(backend, script):
    """Apply the toggle script to the backend and a networkx mirror in lockstep."""
    mirror = nx.Graph()
    present = set()
    for u, v in script:
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in present:
            backend.delete_edge(*key)
            mirror.remove_edge(*key)
            present.discard(key)
        else:
            backend.insert_edge(*key)
            mirror.add_edge(*key)
            present.add(key)
    return mirror


def assert_matches_networkx(backend, mirror):
    nodes = list(mirror.nodes)
    components = {node: index for index, comp in enumerate(nx.connected_components(mirror)) for node in comp}
    for i, u in enumerate(nodes):
        assert backend.component_size(u) == len(
            nx.node_connected_component(mirror, u)
        )
        for v in nodes[i + 1 :]:
            expected = components[u] == components[v]
            assert backend.connected(u, v) == expected
            assert (backend.component_id(u) == backend.component_id(v)) == expected


class TestBackendsAgainstNetworkx:
    @given(scripts)
    @settings(max_examples=50, deadline=None)
    def test_hdt_matches_networkx(self, script):
        backend = HDTConnectivity()
        mirror = run_script(backend, script)
        assert_matches_networkx(backend, mirror)

    @given(scripts)
    @settings(max_examples=50, deadline=None)
    def test_euler_tour_matches_networkx(self, script):
        backend = EulerTourConnectivity()
        mirror = run_script(backend, script)
        assert_matches_networkx(backend, mirror)

    @given(scripts)
    @settings(max_examples=30, deadline=None)
    def test_union_find_matches_networkx(self, script):
        backend = UnionFindConnectivity()
        mirror = run_script(backend, script)
        assert_matches_networkx(backend, mirror)

    @given(scripts)
    @settings(max_examples=30, deadline=None)
    def test_hdt_edge_and_vertex_counts(self, script):
        backend = HDTConnectivity()
        mirror = run_script(backend, script)
        assert backend.num_edges() == mirror.number_of_edges()
