"""Property tests: chained standbys are indistinguishable from direct ones.

The fleet design (docs/API.md) lets ``replica_of`` point at another
replica, fanning the replication stream out as a tree with per-hop ack
forwarding.  The claims under test: at every acked chunk boundary a
*chained* standby (primary → A → B) equals a *direct* standby of the same
primary, equals sequential DynStrClu over the same prefix — for 1-shard
and 4-shard tenants — and a leaf's ack propagates hop by hop into the
primary's retention floor (the slowest-leaf guarantee).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.service import (
    BackgroundServer,
    EngineConfig,
    EngineManager,
    StandbyEngine,
)

EXACT_PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
FAST = EngineConfig(batch_size=8, flush_interval=0.005)


@st.composite
def update_streams(draw):
    """A random applicable stream: toggles over a small vertex universe."""
    n = draw(st.integers(min_value=4, max_value=10))
    length = draw(st.integers(min_value=1, max_value=30))
    present = set()
    stream = []
    for _ in range(length):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in present:
            present.discard(edge)
            stream.append(Update.delete(*edge))
        else:
            present.add(edge)
            stream.append(Update.insert(*edge))
    return stream


def _wait_until(predicate, timeout: float = 20.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _groups(target, universe):
    return {frozenset(group) for group in target.group_by(universe).as_sets()}


def _caught_up(replica, primary, shards):
    """True when the replica fully mirrors the primary's WAL state.

    ``replica.applied`` counts *logical* updates (a cross-shard edge is
    counted once, at u's owner), so it can reach the primary's count
    while the replica-side copies of cross-shard records are still in
    flight on other shards.  Per-shard WAL positions are the precise
    catch-up measure.
    """
    if replica.applied < primary.applied:
        return False
    if shards == 1:
        return True
    inner = replica.engine
    return all(
        inner.shards[i].wal_position >= primary.shards[i].wal_position
        for i in range(shards)
    )


def _drive_chain(stream, batch, shards):
    """primary → A (served) → B, asserted at every acked chunk boundary."""
    universe = list(range(12))
    reference = DynStrClu(EXACT_PARAMS)
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        manager = EngineManager(
            EXACT_PARAMS,
            default_engine_config=EngineConfig(
                batch_size=8, flush_interval=0.005, shards=shards
            ),
            data_root=tmp_path / "primary",
            create_default=False,
        )
        manager.create("t")
        engine = manager.get("t")
        with BackgroundServer(manager) as server:
            direct = StandbyEngine(
                f"127.0.0.1:{server.port}",
                "t",
                data_dir=tmp_path / "direct",
                config=FAST,
                poll_interval=0.005,
            ).start()
            middle = StandbyEngine(
                f"127.0.0.1:{server.port}",
                "t",
                data_dir=tmp_path / "middle",
                config=FAST,
                poll_interval=0.005,
            ).start()
            middle_manager = EngineManager.adopt(middle, "t")
            try:
                with BackgroundServer(middle_manager) as middle_server:
                    leaf = StandbyEngine(
                        f"127.0.0.1:{middle_server.port}",
                        "t",
                        data_dir=tmp_path / "leaf",
                        config=FAST,
                        poll_interval=0.005,
                    ).start()
                    try:
                        for offset in range(0, len(stream), batch):
                            for update in stream[offset: offset + batch]:
                                engine.submit(update)
                                reference.apply(update)
                            engine.flush()
                            target = engine.applied
                            for replica in (direct, middle, leaf):
                                assert _wait_until(
                                    lambda: _caught_up(replica, engine, shards)
                                ), (
                                    f"replica stalled at "
                                    f"{replica.applied}/{target}"
                                )
                                assert replica.applied == target
                            expected = {
                                frozenset(g)
                                for g in reference.group_by(universe).as_sets()
                            }
                            assert _groups(leaf, universe) == expected
                            assert _groups(direct, universe) == expected
                        assert (
                            reference.updates_processed
                            == engine.applied
                            == leaf.applied
                        )
                    finally:
                        leaf.close()
            finally:
                middle_manager.close()
            direct.close()
        manager.close()


@settings(max_examples=5, deadline=None)
@given(stream=update_streams(), batch=st.integers(min_value=1, max_value=9))
def test_chained_standby_equals_direct_and_sequential_1_shard(stream, batch):
    _drive_chain(stream, batch, shards=1)


@settings(max_examples=3, deadline=None)
@given(stream=update_streams(), batch=st.integers(min_value=2, max_value=9))
def test_chained_standby_equals_direct_and_sequential_4_shards(stream, batch):
    _drive_chain(stream, batch, shards=4)


def test_leaf_ack_reaches_the_primary_retention_floor():
    """Regression: per-hop forwarding makes the root's retention floor
    track the slowest *leaf*, not its direct child."""
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        manager = EngineManager(
            EXACT_PARAMS,
            default_engine_config=FAST,
            data_root=tmp_path / "primary",
            create_default=False,
        )
        manager.create("t")
        engine = manager.get("t")
        for i in range(10):
            engine.submit(Update.insert(i, i + 1))
        engine.flush()
        with BackgroundServer(manager) as server:
            middle = StandbyEngine(
                f"127.0.0.1:{server.port}",
                "t",
                data_dir=tmp_path / "middle",
                config=FAST,
                poll_interval=0.005,
            ).start()
            middle_manager = EngineManager.adopt(middle, "t")
            try:
                with BackgroundServer(middle_manager) as middle_server:
                    assert _wait_until(lambda: middle.applied >= 10)
                    leaf = StandbyEngine(
                        f"127.0.0.1:{middle_server.port}",
                        "t",
                        data_dir=tmp_path / "leaf",
                        config=FAST,
                        poll_interval=0.005,
                    ).start()
                    try:
                        assert _wait_until(lambda: leaf.applied >= 10)
                        # the leaf acked 10 to the middle hop; the middle
                        # forwarded min(own, leaf) upstream — so the root's
                        # floor converges to the leaf's position
                        assert _wait_until(
                            lambda: middle.downstream_acks().get(0, -1) >= 10
                        )
                        assert _wait_until(
                            lambda: engine.retention_floor() >= 10
                        )
                    finally:
                        leaf.close()
                    # a slow leaf drags the root's floor back down:
                    # simulate one acking only position 3 (the live leaf
                    # had to go first — it re-acks 10 on every poll)
                    middle.note_downstream_ack(0, 3)
                    assert _wait_until(
                        lambda: manager.acks("t").get(0) == 3
                    )
                    assert engine.retention_floor() == 3
            finally:
                middle_manager.close()
        manager.close()
