"""Property-based tests for the sampling estimator and the labelling strategy."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import StrCluParams
from repro.core.estimator import SamplingSimilarityOracle
from repro.core.labelling import LabellingStrategy, is_valid_rho_approximate
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.graph.similarity import SimilarityKind, jaccard_similarity

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)), min_size=1, max_size=60
)


def build_graph(pairs):
    graph = DynamicGraph()
    for u, v in pairs:
        if u != v and not graph.has_edge(u, v):
            graph.insert_edge(u, v)
    return graph


class TestEstimatorProperties:
    @given(edge_lists, st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_jaccard_estimates_stay_in_unit_interval(self, pairs, seed):
        graph = build_graph(pairs)
        oracle = SamplingSimilarityOracle(graph, rng=random.Random(seed))
        for u, v in graph.edges():
            estimate = oracle.similarity(u, v, num_samples=32)
            assert 0.0 <= estimate <= 1.0

    @given(edge_lists, st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_cosine_estimates_never_negative(self, pairs, seed):
        graph = build_graph(pairs)
        oracle = SamplingSimilarityOracle(
            graph, kind=SimilarityKind.COSINE, epsilon=0.4, rng=random.Random(seed)
        )
        for u, v in graph.edges():
            assert oracle.similarity(u, v, num_samples=32) >= 0.0

    @given(edge_lists, st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_large_sample_estimate_is_rho_accurate(self, pairs, seed):
        """With a generous sample budget the strategy produces a valid
        ρ-approximate labelling for a generous ρ (statistical, seeded)."""
        graph = build_graph(pairs)
        params = StrCluParams(epsilon=0.4, mu=2, rho=0.6, delta_star=0.05, seed=seed)
        oracle = SamplingSimilarityOracle(
            graph, epsilon=params.epsilon, rng=random.Random(seed), default_samples=1024
        )
        strategy = LabellingStrategy(params, oracle)
        labels = {
            canonical_edge(u, v): strategy.label(u, v) for u, v in graph.edges()
        }
        assert is_valid_rho_approximate(graph, labels, params.epsilon, params.rho)

    @given(edge_lists)
    @settings(max_examples=30, deadline=None)
    def test_estimator_is_exact_for_full_overlap_edges(self, pairs):
        """Edges whose endpoints have identical closed neighbourhoods must be
        estimated as similarity 1 regardless of sampling randomness."""
        graph = build_graph(pairs)
        oracle = SamplingSimilarityOracle(graph, rng=random.Random(0))
        for u, v in graph.edges():
            if graph.closed_neighbourhood(u) == graph.closed_neighbourhood(v):
                assert oracle.similarity(u, v, num_samples=16) == 1.0
                assert jaccard_similarity(graph, u, v) == 1.0
