"""Unit tests for the vAuxInfo module (SimCnt + neighbour categories)."""

from __future__ import annotations

from repro.core.aux_info import VertexAuxInfo


class TestSimCnt:
    def test_empty(self):
        aux = VertexAuxInfo()
        assert aux.sim_count(1) == 0
        assert aux.similar_neighbours(1) == set()

    def test_add_similar_edge_updates_both_endpoints(self):
        aux = VertexAuxInfo()
        aux.update_similar_edge(1, 2, u_is_core=False, v_is_core=True)
        assert aux.sim_count(1) == 1
        assert aux.sim_count(2) == 1
        assert aux.sim_core_neighbours(1) == {2}
        assert aux.sim_noncore_neighbours(2) == {1}

    def test_remove_similar_edge(self):
        aux = VertexAuxInfo()
        aux.update_similar_edge(1, 2, True, True)
        aux.remove_similar_edge(1, 2)
        assert aux.sim_count(1) == 0
        assert aux.sim_count(2) == 0

    def test_remove_unknown_edge_is_noop(self):
        aux = VertexAuxInfo()
        aux.remove_similar_edge(7, 8)
        assert aux.sim_count(7) == 0


class TestCategories:
    def test_category_moves_with_core_status(self):
        aux = VertexAuxInfo()
        aux.update_similar_edge(1, 2, u_is_core=False, v_is_core=False)
        assert aux.sim_core_neighbours(1) == set()
        aux.set_neighbour_core_status(1, 2, v_is_core=True)
        assert aux.sim_core_neighbours(1) == {2}
        assert aux.sim_noncore_neighbours(1) == set()
        # SimCnt unchanged by the category move
        assert aux.sim_count(1) == 1

    def test_category_move_for_non_similar_neighbour_is_noop(self):
        aux = VertexAuxInfo()
        aux.set_neighbour_core_status(1, 2, v_is_core=True)
        assert aux.sim_count(1) == 0

    def test_is_similar_neighbour(self):
        aux = VertexAuxInfo()
        aux.update_similar_edge(3, 4, False, True)
        assert aux.is_similar_neighbour(3, 4)
        assert aux.is_similar_neighbour(4, 3)
        assert not aux.is_similar_neighbour(3, 5)

    def test_vertices_and_entry_count(self):
        aux = VertexAuxInfo()
        aux.update_similar_edge(1, 2, True, True)
        aux.update_similar_edge(2, 3, True, False)
        assert aux.vertices() == {1, 2, 3}
        assert aux.num_entries() == 4

    def test_similar_neighbours_returns_copy(self):
        aux = VertexAuxInfo()
        aux.update_similar_edge(1, 2, True, True)
        snapshot = aux.similar_neighbours(1)
        snapshot.add(99)
        assert aux.similar_neighbours(1) == {2}
