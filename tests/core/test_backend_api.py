"""Unit tests of the Clusterer protocol and the backend registry."""

from __future__ import annotations

import pytest

from repro.core.api import (
    Clusterer,
    available_backends,
    make_clusterer,
    register_backend,
)
from repro.core.config import StrCluParams
from repro.core.dynelm import Update
from repro.core.dynstrclu import DynStrClu
from repro.core.result import clusterings_equal
from repro.instrumentation import OpCounter

PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0)

TRIANGLE_PLUS_TAIL = [
    Update.insert(1, 2),
    Update.insert(2, 3),
    Update.insert(1, 3),
    Update.insert(3, 4),
]


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {
            "dynstrclu",
            "dynelm",
            "scan-exact",
            "pscan",
            "hscan",
        }

    def test_unknown_backend_lists_registered_names(self):
        with pytest.raises(ValueError, match="dynstrclu"):
            make_clusterer("nope", PARAMS)

    def test_name_is_case_insensitive(self):
        assert isinstance(make_clusterer("DynStrClu", PARAMS), DynStrClu)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("dynstrclu", lambda params, **kw: None)

    def test_replace_allows_override_and_restore(self):
        from repro.core.api import _BACKENDS

        original = make_clusterer("dynstrclu", PARAMS)
        factory = _BACKENDS["dynstrclu"]
        sentinel = object()
        register_backend("dynstrclu", lambda params, **kw: sentinel, replace=True)
        try:
            assert make_clusterer("dynstrclu", PARAMS) is sentinel
        finally:
            # restore the *genuine* factory: a lossy lambda would drop
            # keyword plumbing (scope, connectivity_backend) for every
            # later test in the process
            register_backend("dynstrclu", factory, replace=True)
        assert isinstance(make_clusterer("dynstrclu", PARAMS), type(original))


class TestProtocolConformance:
    @pytest.mark.parametrize("name", sorted(["dynstrclu", "dynelm", "scan-exact", "pscan", "hscan"]))
    def test_backend_satisfies_protocol(self, name):
        algo = make_clusterer(name, PARAMS)
        assert isinstance(algo, Clusterer)
        # the protocol's documented attributes
        assert algo.params == PARAMS or algo.params is PARAMS
        assert algo.updates_processed == 0
        assert algo.graph.num_vertices == 0

    @pytest.mark.parametrize("name", sorted(["dynstrclu", "dynelm", "scan-exact", "pscan", "hscan"]))
    def test_backend_clusters_the_triangle(self, name):
        algo = make_clusterer(name, PARAMS)
        for update in TRIANGLE_PLUS_TAIL:
            algo.apply(update)
        assert algo.updates_processed == len(TRIANGLE_PLUS_TAIL)
        reference = DynStrClu(PARAMS)
        for update in TRIANGLE_PLUS_TAIL:
            reference.apply(update)
        assert clusterings_equal(algo.clustering(), reference.clustering())

    @pytest.mark.parametrize("name", sorted(["dynstrclu", "dynelm", "scan-exact", "pscan", "hscan"]))
    def test_group_by_matches_dynstrclu(self, name):
        algo = make_clusterer(name, PARAMS)
        reference = DynStrClu(PARAMS)
        for update in TRIANGLE_PLUS_TAIL:
            algo.apply(update)
            reference.apply(update)
        query = [1, 2, 3, 4, 99]
        assert {frozenset(g) for g in algo.group_by(query).as_sets()} == {
            frozenset(g) for g in reference.group_by(query).as_sets()
        }

    @pytest.mark.parametrize("name", sorted(["dynstrclu", "dynelm", "scan-exact", "pscan", "hscan"]))
    def test_insert_delete_and_memory(self, name):
        algo = make_clusterer(name, PARAMS)
        algo.insert_edge(1, 2)
        algo.insert_edge(2, 3)
        algo.delete_edge(1, 2)
        assert algo.updates_processed == 3
        assert algo.graph.num_edges == 1
        assert algo.memory_words() > 0

    def test_counter_is_threaded_through(self):
        counter = OpCounter()
        algo = make_clusterer("pscan", PARAMS, counter=counter)
        algo.insert_edge(1, 2)
        assert counter.get("update") == 1

    def test_dynstrclu_updates_processed_property(self):
        algo = DynStrClu(PARAMS)
        algo.insert_edge(1, 2)
        assert algo.updates_processed == 1
