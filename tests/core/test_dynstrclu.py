"""Unit tests for DynStrClu (clustering maintenance + cluster-group-by)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.scan import static_scan
from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.core.labelling import EdgeLabel
from repro.core.result import clusterings_equal, compute_clusters
from repro.graph.dynamic_graph import canonical_edge
from repro.graph.similarity import SimilarityKind
from repro.instrumentation import OpCounter
from repro.workloads.updates import InsertionStrategy, generate_update_sequence


@pytest.fixture(params=["hdt", "ett", "union_find"])
def backend(request) -> str:
    return request.param


class TestExactEquivalenceWithSCAN:
    def test_after_insertions(self, exact_params, community_edges, backend):
        algo = DynStrClu.from_edges(
            community_edges, exact_params, connectivity_backend=backend
        )
        reference = static_scan(algo.graph, exact_params.epsilon, exact_params.mu)
        assert clusterings_equal(algo.clustering(), reference)

    def test_after_mixed_update_sequence(self, exact_params, community_edges, backend):
        workload = generate_update_sequence(
            48, community_edges, 300, InsertionStrategy.DEGREE_RANDOM, eta=0.35, seed=4
        )
        algo = DynStrClu(exact_params, connectivity_backend=backend)
        for update in workload.all_updates():
            algo.apply(update)
        reference = static_scan(algo.graph, exact_params.epsilon, exact_params.mu)
        assert clusterings_equal(algo.clustering(), reference)

    def test_equivalence_at_intermediate_checkpoints(self, exact_params, community_edges):
        workload = generate_update_sequence(
            48, community_edges, 200, InsertionStrategy.RANDOM_RANDOM, eta=0.5, seed=8
        )
        algo = DynStrClu(exact_params)
        for index, update in enumerate(workload.all_updates()):
            algo.apply(update)
            if index % 60 == 0:
                reference = static_scan(algo.graph, exact_params.epsilon, exact_params.mu)
                assert clusterings_equal(algo.clustering(), reference), f"step {index}"

    def test_cosine_equivalence(self, community_edges):
        params = StrCluParams(
            epsilon=0.5, mu=3, rho=0.0, similarity=SimilarityKind.COSINE
        )
        workload = generate_update_sequence(
            48, community_edges, 150, InsertionStrategy.DEGREE_DEGREE, eta=0.2, seed=10
        )
        algo = DynStrClu(params)
        for update in workload.all_updates():
            algo.apply(update)
        reference = static_scan(algo.graph, 0.5, 3, SimilarityKind.COSINE)
        assert clusterings_equal(algo.clustering(), reference)


class TestMaintainedState:
    def test_core_set_matches_simcnt(self, exact_params, community_edges):
        algo = DynStrClu.from_edges(community_edges, exact_params)
        for v in algo.graph.vertices():
            expected = algo.aux.sim_count(v) >= exact_params.mu
            assert algo.is_core(v) == expected

    def test_aux_similar_sets_match_labels(self, exact_params, community_edges):
        algo = DynStrClu.from_edges(community_edges, exact_params)
        for (u, v), label in algo.labels.items():
            if label is EdgeLabel.SIMILAR:
                assert algo.aux.is_similar_neighbour(u, v)
                assert algo.aux.is_similar_neighbour(v, u)
            else:
                assert not algo.aux.is_similar_neighbour(u, v)

    def test_cc_structure_holds_exactly_the_sim_core_edges(self, exact_params, community_edges):
        workload = generate_update_sequence(
            48, community_edges, 200, InsertionStrategy.RANDOM_RANDOM, eta=0.4, seed=11
        )
        algo = DynStrClu(exact_params)
        for update in workload.all_updates():
            algo.apply(update)
        expected_edges = {
            edge
            for edge, label in algo.labels.items()
            if label is EdgeLabel.SIMILAR and edge[0] in algo.cores and edge[1] in algo.cores
        }
        assert algo.cc.num_edges() == len(expected_edges)
        for u, v in expected_edges:
            assert algo.cc.has_edge(u, v)

    def test_categories_follow_core_status(self, exact_params, community_edges):
        algo = DynStrClu.from_edges(community_edges, exact_params)
        for v in algo.graph.vertices():
            for w in algo.aux.sim_core_neighbours(v):
                assert algo.is_core(w)
            for w in algo.aux.sim_noncore_neighbours(v):
                assert not algo.is_core(w)


class TestGroupByQueries:
    def test_group_by_matches_clustering_restriction(self, exact_params, community_edges):
        algo = DynStrClu.from_edges(community_edges, exact_params)
        clustering = algo.clustering()
        rng = random.Random(0)
        vertices = list(algo.graph.vertices())
        for _ in range(20):
            query = rng.sample(vertices, 12)
            result = algo.group_by(query)
            expected = [
                cluster & set(query)
                for cluster in clustering.clusters
                if cluster & set(query)
            ]
            got = sorted(sorted(map(repr, g)) for g in result.as_sets())
            want = sorted(sorted(map(repr, g)) for g in expected)
            assert got == want

    def test_group_by_of_all_vertices_is_whole_clustering(self, exact_params, community_edges):
        algo = DynStrClu.from_edges(community_edges, exact_params)
        result = algo.group_by(list(algo.graph.vertices()))
        clustering = algo.clustering()
        assert sorted(map(len, result.as_sets())) == sorted(map(len, clustering.clusters))

    def test_noise_vertices_form_no_group(self, exact_params):
        algo = DynStrClu(exact_params)
        algo.insert_edge(0, 1)  # a single edge: nobody is a core with mu = 3
        result = algo.group_by([0, 1])
        assert result.num_groups == 0

    def test_group_by_empty_query(self, exact_params, community_edges):
        algo = DynStrClu.from_edges(community_edges[:40], exact_params)
        assert algo.group_by([]).num_groups == 0

    def test_hub_appears_in_multiple_groups(self):
        params = StrCluParams(epsilon=0.3, mu=3, rho=0.0)
        clique_a = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        clique_b = [(u, v) for u in range(10, 14) for v in range(u + 1, 14)]
        edges = clique_a + clique_b + [(2, 20), (12, 20)]
        algo = DynStrClu.from_edges(edges, params)
        # vertex 20 is similar to cores 2 and 12 of two different clusters
        clustering = algo.clustering()
        assert 20 in clustering.hubs
        result = algo.group_by([20])
        assert result.num_groups == 2


class TestApproximateMode:
    def test_sandwich_containment_after_updates(self, community_edges):
        """Theorem 2.3 applied to the maintained result (statistical check)."""
        epsilon, mu, rho = 0.4, 3, 0.4
        params = StrCluParams(epsilon=epsilon, mu=mu, rho=rho, delta_star=0.01, seed=13)
        algo = DynStrClu.from_edges(community_edges, params)
        graph = algo.graph
        upper = static_scan(graph, (1 + rho) * epsilon, mu)
        lower = static_scan(graph, (1 - rho) * epsilon, mu)
        approx = algo.clustering()
        for cluster in upper.clusters:
            assert any(cluster <= candidate for candidate in approx.clusters)
        for cluster in approx.clusters:
            assert any(cluster <= candidate for candidate in lower.clusters)

    def test_counter_records_cc_and_groupby_operations(self, community_edges):
        counter = OpCounter()
        params = StrCluParams(epsilon=0.4, mu=3, rho=0.05, seed=2)
        algo = DynStrClu.from_edges(community_edges, params, counter=counter)
        algo.group_by(list(algo.graph.vertices())[:10])
        assert counter.get("cc_op") > 0
        assert counter.get("groupby_vertex") == 10

    def test_memory_words_exceed_dynelm(self, community_edges, approx_params):
        from repro.core.dynelm import DynELM

        elm = DynELM.from_edges(community_edges, approx_params)
        strclu = DynStrClu.from_edges(community_edges, approx_params)
        assert strclu.memory_words() > elm.memory_words()
