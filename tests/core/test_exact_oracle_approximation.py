"""DynELM with the exact oracle but ρ > 0: deterministic ρ-approximate validity.

Running the (½ρε, δ)-strategy on top of the *exact* similarity oracle removes
all sampling randomness: every label decision equals the exact threshold
test, and the only approximation left is the update affordability (an edge is
re-labelled only every τ(u, v)-th affecting update).  Lemmas 5.1/5.2 then
guarantee — deterministically — that the maintained labelling is a valid
ρ-approximate labelling after every update, which is exactly what these
tests assert.  This isolates the DT/affordability machinery from the
estimator, complementing the sampling-based tests.
"""

from __future__ import annotations

import pytest

from repro.core.config import StrCluParams
from repro.core.dynelm import DynELM
from repro.core.dynstrclu import DynStrClu
from repro.core.estimator import ExactSimilarityOracle
from repro.core.labelling import is_valid_rho_approximate
from repro.baselines.scan import static_scan
from repro.graph.similarity import SimilarityKind
from repro.workloads.updates import InsertionStrategy, generate_update_sequence


def make_dynelm(params: StrCluParams) -> DynELM:
    algo = DynELM(params)
    algo.oracle = ExactSimilarityOracle(algo.graph, params.similarity)
    algo.strategy.oracle = algo.oracle
    return algo


class TestDeterministicRhoValidity:
    @pytest.mark.parametrize("rho", [0.1, 0.3, 0.6])
    def test_jaccard_labels_always_valid(self, community_edges, rho):
        params = StrCluParams(epsilon=0.4, mu=3, rho=rho, seed=1)
        workload = generate_update_sequence(
            48, community_edges, 300, InsertionStrategy.DEGREE_RANDOM, eta=0.3, seed=7
        )
        algo = make_dynelm(params)
        for index, update in enumerate(workload.all_updates()):
            algo.apply(update)
            if index % 50 == 0:
                assert is_valid_rho_approximate(
                    algo.graph, algo.labels, params.epsilon, rho
                ), f"invalid labelling after update {index}"
        assert is_valid_rho_approximate(algo.graph, algo.labels, params.epsilon, rho)

    @pytest.mark.parametrize("rho", [0.1, 0.4])
    def test_cosine_labels_always_valid(self, community_edges, rho):
        params = StrCluParams(
            epsilon=0.5, mu=3, rho=rho, seed=1, similarity=SimilarityKind.COSINE
        )
        workload = generate_update_sequence(
            48, community_edges, 250, InsertionStrategy.RANDOM_RANDOM, eta=0.3, seed=9
        )
        algo = make_dynelm(params)
        for update in workload.all_updates():
            algo.apply(update)
        assert is_valid_rho_approximate(
            algo.graph, algo.labels, params.epsilon, rho, SimilarityKind.COSINE
        )

    def test_larger_rho_relabels_less(self, community_edges):
        workload = generate_update_sequence(
            48, community_edges, 300, InsertionStrategy.DEGREE_DEGREE, eta=0.1, seed=3
        )
        invocations = {}
        for rho in (0.05, 0.3, 0.6):
            params = StrCluParams(epsilon=0.4, mu=3, rho=rho, seed=1)
            algo = make_dynelm(params)
            for update in workload.all_updates():
                algo.apply(update)
            invocations[rho] = algo.strategy.invocations
        assert invocations[0.6] <= invocations[0.3] <= invocations[0.05]

    def test_sandwich_guarantee_holds_deterministically(self, community_edges):
        """With the exact oracle the Theorem 2.3 sandwich holds surely."""
        epsilon, mu, rho = 0.4, 3, 0.4
        params = StrCluParams(epsilon=epsilon, mu=mu, rho=rho, seed=5)
        algo = DynStrClu(params)
        algo.elm.oracle = ExactSimilarityOracle(algo.graph, params.similarity)
        algo.elm.strategy.oracle = algo.elm.oracle
        workload = generate_update_sequence(
            48, community_edges, 200, InsertionStrategy.DEGREE_RANDOM, eta=0.2, seed=6
        )
        for update in workload.all_updates():
            algo.apply(update)
        upper = static_scan(algo.graph, (1 + rho) * epsilon, mu)
        lower = static_scan(algo.graph, (1 - rho) * epsilon, mu)
        approx = algo.clustering()
        for cluster in upper.clusters:
            assert any(cluster <= candidate for candidate in approx.clusters)
        for cluster in approx.clusters:
            assert any(cluster <= candidate for candidate in lower.clusters)
