"""Unit tests for DynELM (dynamic edge-label maintenance)."""

from __future__ import annotations

import random

import pytest

from repro.core.config import StrCluParams
from repro.core.dynelm import DynELM, Update, UpdateKind
from repro.core.labelling import EdgeLabel, exact_labelling, is_valid_rho_approximate
from repro.core.result import clusterings_equal, compute_clusters
from repro.graph.dynamic_graph import canonical_edge
from repro.graph.generators import planted_partition_graph
from repro.graph.similarity import SimilarityKind
from repro.instrumentation import OpCounter
from repro.workloads.updates import InsertionStrategy, generate_update_sequence


class TestUpdateTypes:
    def test_update_constructors(self):
        ins = Update.insert(3, 1)
        assert ins.kind is UpdateKind.INSERT
        assert ins.edge == (1, 3)
        dele = Update.delete(1, 3)
        assert dele.kind is UpdateKind.DELETE

    def test_label_events_for_insert_and_delete(self, exact_params):
        elm = DynELM(exact_params)
        result = elm.insert_edge(0, 1)
        assert result.label_events[0] == ((0, 1), result.updated_edge_label)
        result = elm.delete_edge(0, 1)
        assert result.label_events[0] == ((0, 1), None)


class TestExactMode:
    def test_labels_match_exact_labelling_after_insertions(self, exact_params, community_edges):
        elm = DynELM.from_edges(community_edges, exact_params)
        reference = exact_labelling(elm.graph, exact_params.epsilon)
        assert elm.labels == reference

    def test_labels_match_after_mixed_updates(self, exact_params, community_edges):
        workload = generate_update_sequence(
            48, community_edges, 300, InsertionStrategy.DEGREE_RANDOM, eta=0.4, seed=2
        )
        elm = DynELM(exact_params)
        for update in workload.all_updates():
            elm.apply(update)
        reference = exact_labelling(elm.graph, exact_params.epsilon)
        assert elm.labels == reference

    def test_clustering_matches_static_computation(self, exact_params, community_edges):
        elm = DynELM.from_edges(community_edges, exact_params)
        expected = compute_clusters(
            elm.graph, exact_labelling(elm.graph, exact_params.epsilon), exact_params.mu
        )
        assert clusterings_equal(elm.clustering(), expected)

    def test_exact_mode_cosine(self, community_edges):
        params = StrCluParams(epsilon=0.5, mu=3, rho=0.0, similarity=SimilarityKind.COSINE)
        elm = DynELM.from_edges(community_edges, params)
        reference = exact_labelling(elm.graph, 0.5, SimilarityKind.COSINE)
        assert elm.labels == reference


class TestApproximateMode:
    def test_labelling_is_rho_valid_after_updates(self, community_edges):
        params = StrCluParams(epsilon=0.4, mu=3, rho=0.4, delta_star=0.01, seed=5)
        workload = generate_update_sequence(
            48, community_edges, 250, InsertionStrategy.RANDOM_RANDOM, eta=0.2, seed=6
        )
        elm = DynELM(params)
        for update in workload.all_updates():
            elm.apply(update)
        assert is_valid_rho_approximate(
            elm.graph, elm.labels, params.epsilon, params.rho, params.similarity
        )

    def test_cosine_labelling_is_rho_valid(self, community_edges):
        params = StrCluParams(
            epsilon=0.5, mu=3, rho=0.3, delta_star=0.01, seed=7,
            similarity=SimilarityKind.COSINE,
        )
        elm = DynELM.from_edges(community_edges, params)
        assert is_valid_rho_approximate(
            elm.graph, elm.labels, params.epsilon, params.rho, SimilarityKind.COSINE
        )

    def test_every_edge_has_a_label_and_a_tracker(self, approx_params, community_edges):
        elm = DynELM.from_edges(community_edges, approx_params)
        assert set(elm.labels) == {canonical_edge(u, v) for u, v in elm.graph.edges()}
        for u, v in elm.graph.edges():
            assert elm.tracker.is_tracked(u, v)

    def test_deletion_removes_label_and_tracker(self, approx_params):
        elm = DynELM(approx_params)
        elm.insert_edge(0, 1)
        elm.insert_edge(1, 2)
        elm.delete_edge(0, 1)
        assert elm.edge_label(0, 1) is None
        assert not elm.tracker.is_tracked(0, 1)
        assert elm.graph.num_edges == 1

    def test_relabel_count_amortisation(self, community_edges):
        """With a large rho the number of strategy invocations per update must
        be far below the average degree (the whole point of affordability)."""
        params = StrCluParams(epsilon=0.4, mu=3, rho=0.5, delta_star=0.01, seed=1)
        workload = generate_update_sequence(
            48, community_edges, 400, InsertionStrategy.DEGREE_DEGREE, eta=0.0, seed=3
        )
        elm = DynELM(params)
        for update in workload.all_updates():
            elm.apply(update)
        total_updates = workload.total_updates
        # a pSCAN-style exact maintainer recomputes every edge incident on both
        # endpoints, i.e. about 2 * avg_degree similarity evaluations per update
        avg_degree = 2 * elm.graph.num_edges / elm.graph.num_vertices
        invocations_per_update = elm.strategy.invocations / total_updates
        assert invocations_per_update < avg_degree

    def test_flips_reported_are_actual_changes(self, approx_params, community_edges):
        elm = DynELM(approx_params)
        previous = {}
        for update in generate_update_sequence(
            48, community_edges, 150, InsertionStrategy.RANDOM_RANDOM, eta=0.3, seed=9
        ).all_updates():
            result = elm.apply(update)
            for edge, new_label in result.flips:
                assert previous.get(edge) is not None
                assert previous[edge] is not new_label
            previous = dict(elm.labels)


class TestInstrumentation:
    def test_counters_and_memory(self, approx_params, community_edges):
        counter = OpCounter()
        elm = DynELM.from_edges(community_edges[:100], approx_params, counter=counter)
        assert counter.get("update") == 100
        assert counter.get("label_invocation") >= 100
        assert elm.memory_words() > 0

    def test_memory_scales_with_graph(self, approx_params, community_edges):
        small = DynELM.from_edges(community_edges[:50], approx_params)
        large = DynELM.from_edges(community_edges, approx_params)
        assert large.memory_words() > small.memory_words()


class TestErrorHandling:
    def test_duplicate_insert_raises(self, approx_params):
        elm = DynELM(approx_params)
        elm.insert_edge(0, 1)
        with pytest.raises(Exception):
            elm.insert_edge(1, 0)

    def test_delete_missing_edge_raises(self, approx_params):
        elm = DynELM(approx_params)
        with pytest.raises(Exception):
            elm.delete_edge(0, 1)
