"""Unit tests for StrCluParams validation and derived quantities."""

from __future__ import annotations

import pytest

from repro.core.config import DEFAULT_PARAMS, StrCluParams
from repro.graph.similarity import SimilarityKind


class TestValidation:
    def test_defaults_are_valid(self):
        params = StrCluParams()
        assert 0 < params.epsilon <= 1
        assert params.mu >= 1
        assert params is not DEFAULT_PARAMS  # fresh instance

    @pytest.mark.parametrize("epsilon", [0.0, -0.1, 1.5])
    def test_bad_epsilon(self, epsilon):
        with pytest.raises(ValueError):
            StrCluParams(epsilon=epsilon)

    @pytest.mark.parametrize("mu", [0, -3])
    def test_bad_mu(self, mu):
        with pytest.raises(ValueError):
            StrCluParams(mu=mu)

    def test_rho_upper_bound_depends_on_epsilon(self):
        # for epsilon = 0.8, rho must be below 1/0.8 - 1 = 0.25
        StrCluParams(epsilon=0.8, rho=0.2)
        with pytest.raises(ValueError):
            StrCluParams(epsilon=0.8, rho=0.3)

    def test_rho_below_one_for_small_epsilon(self):
        StrCluParams(epsilon=0.2, rho=0.9)
        with pytest.raises(ValueError):
            StrCluParams(epsilon=0.2, rho=1.0)

    def test_rho_zero_always_allowed(self):
        assert StrCluParams(epsilon=1.0, rho=0.0).exact_mode

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.5])
    def test_bad_delta_star(self, delta):
        with pytest.raises(ValueError):
            StrCluParams(delta_star=delta)

    def test_similarity_coerced_from_string(self):
        params = StrCluParams(similarity="cosine")
        assert params.similarity is SimilarityKind.COSINE


class TestDerivedQuantities:
    def test_delta_estimate(self):
        params = StrCluParams(epsilon=0.4, rho=0.1)
        assert params.delta_estimate == pytest.approx(0.02)

    def test_delta_schedule_telescopes_below_delta_star(self):
        params = StrCluParams(delta_star=0.05)
        total = sum(params.delta_schedule(i) for i in range(1, 20_000))
        assert total < params.delta_star

    def test_delta_schedule_invalid_invocation(self):
        with pytest.raises(ValueError):
            StrCluParams().delta_schedule(0)

    def test_jaccard_sample_size_matches_formula(self):
        params = StrCluParams(epsilon=0.5, rho=0.2, delta_star=0.01, max_samples=None)
        import math

        delta_1 = params.delta_schedule(1)
        expected = math.ceil(2.0 / 0.05**2 * math.log(2.0 / delta_1))
        assert params.jaccard_sample_size(1) == expected

    def test_sample_sizes_grow_with_invocation_index(self):
        params = StrCluParams(epsilon=0.5, rho=0.2, max_samples=None)
        assert params.jaccard_sample_size(100) > params.jaccard_sample_size(1)

    def test_cosine_sample_size_matches_theorem_8_3(self):
        import math

        params = StrCluParams(epsilon=0.3, rho=0.2, max_samples=None)
        delta_1 = params.delta_schedule(1)
        width = params.delta_estimate
        eps = params.epsilon
        expected = math.ceil(
            (eps * eps + 1.0) ** 2 / (8.0 * eps * eps * width * width) * math.log(2.0 / delta_1)
        )
        assert params.cosine_sample_size(1) == expected

    def test_cosine_needs_more_samples_for_small_epsilon(self):
        # the Theorem 8.3 constant exceeds the Jaccard constant when ε < 2 - sqrt(3)
        params = StrCluParams(epsilon=0.15, rho=0.2, max_samples=None)
        assert params.cosine_sample_size(1) > params.jaccard_sample_size(1)

    def test_sample_size_capped(self):
        params = StrCluParams(epsilon=0.2, rho=0.01, max_samples=500)
        assert params.sample_size(1) == 500

    def test_sample_size_in_exact_mode_raises(self):
        with pytest.raises(ValueError):
            StrCluParams(rho=0.0).jaccard_sample_size(1)

    def test_dispatch_by_similarity(self):
        jac = StrCluParams(epsilon=0.3, rho=0.2, max_samples=None)
        cos = jac.with_similarity("cosine")
        assert jac.sample_size(1) == jac.jaccard_sample_size(1)
        assert cos.sample_size(1) == cos.cosine_sample_size(1)


class TestCopies:
    def test_with_rho(self):
        params = StrCluParams(rho=0.01)
        changed = params.with_rho(0.5)
        assert changed.rho == 0.5
        assert params.rho == 0.01

    def test_with_epsilon(self):
        assert StrCluParams().with_epsilon(0.33).epsilon == 0.33

    def test_with_similarity(self):
        assert StrCluParams().with_similarity(SimilarityKind.COSINE).similarity is (
            SimilarityKind.COSINE
        )

    def test_frozen(self):
        params = StrCluParams()
        with pytest.raises(Exception):
            params.epsilon = 0.9  # type: ignore[misc]
