"""Unit tests for update-affordability thresholds (Lemmas 5.1/5.2, 8.4/8.5)."""

from __future__ import annotations

import math

import pytest

from repro.core.affordability import (
    cosine_is_balanced,
    cosine_threshold,
    jaccard_affordability,
    jaccard_threshold,
    tracking_threshold,
)
from repro.core.config import StrCluParams
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.similarity import SimilarityKind, jaccard_similarity


class TestJaccardThresholds:
    def test_formula(self):
        assert jaccard_affordability(100, rho=0.1, epsilon=0.4) == math.floor(0.5 * 0.1 * 0.4 * 100)
        assert jaccard_threshold(100, rho=0.1, epsilon=0.4) == 2 + 1

    def test_minimum_is_one(self):
        assert jaccard_threshold(1, rho=0.01, epsilon=0.1) == 1
        assert jaccard_threshold(0, rho=0.5, epsilon=0.9) == 1

    def test_grows_with_degree(self):
        small = jaccard_threshold(10, 0.2, 0.5)
        large = jaccard_threshold(1000, 0.2, 0.5)
        assert large > small

    def test_exact_mode_gives_one(self):
        assert jaccard_threshold(10_000, rho=0.0, epsilon=0.3) == 1


class TestCosineThresholds:
    def test_balance_test(self):
        assert cosine_is_balanced(81, 100, epsilon=1.0)
        assert not cosine_is_balanced(80, 100, epsilon=1.0)

    def test_balanced_formula(self):
        tau = cosine_threshold(90, 100, rho=0.2, epsilon=0.5)
        assert tau == math.floor(0.45 * 0.2 * 0.25 * 100) + 1

    def test_unbalanced_formula(self):
        tau = cosine_threshold(5, 1000, rho=0.2, epsilon=0.5)
        assert tau == math.floor(0.19 * 0.25 * 1000) + 1

    def test_unbalanced_threshold_independent_of_rho(self):
        a = cosine_threshold(5, 1000, rho=0.01, epsilon=0.5)
        b = cosine_threshold(5, 1000, rho=0.4, epsilon=0.5)
        assert a == b

    def test_minimum_is_one(self):
        assert cosine_threshold(1, 1, rho=0.0, epsilon=0.1) == 1


class TestTrackingThresholdDispatch:
    def test_jaccard_uses_max_degree(self):
        graph = DynamicGraph([(0, i) for i in range(1, 41)] + [(1, 2)])
        params = StrCluParams(epsilon=0.5, mu=2, rho=0.4)
        tau = tracking_threshold(graph, 0, 1, params)
        assert tau == jaccard_threshold(40, 0.4, 0.5)

    def test_cosine_uses_closed_sizes(self):
        graph = DynamicGraph([(0, i) for i in range(1, 41)] + [(1, 2)])
        params = StrCluParams(epsilon=0.5, mu=2, rho=0.4, similarity=SimilarityKind.COSINE)
        tau = tracking_threshold(graph, 0, 1, params)
        assert tau == cosine_threshold(3, 41, 0.4, 0.5)

    def test_exact_mode_always_one_under_jaccard(self):
        graph = DynamicGraph([(0, i) for i in range(1, 100)])
        params = StrCluParams(epsilon=0.3, mu=2, rho=0.0)
        assert tracking_threshold(graph, 0, 1, params) == 1


class TestAffordabilityGuarantee:
    """Empirical check of Lemma 5.1/5.2: within k affecting updates the exact
    Jaccard similarity cannot cross the (1 ± ρ)ε boundary."""

    @pytest.mark.parametrize("seed", range(3))
    def test_dissimilar_edge_cannot_become_clearly_similar(self, seed):
        import random

        rng = random.Random(seed)
        epsilon, rho = 0.4, 0.5
        # build a hub edge (0, 1) with many exclusive neighbours of 0: dissimilar
        graph = DynamicGraph([(0, 1)] + [(0, i) for i in range(2, 30)])
        assert jaccard_similarity(graph, 0, 1) < (1 - rho) * epsilon
        k = jaccard_affordability(max(graph.degree(0), graph.degree(1)), rho, epsilon)
        # apply k adversarial affecting updates that raise the similarity fastest:
        # connect 1 to neighbours of 0 (insertions incident on 1)
        raised = 0
        for i in range(2, 30):
            if raised >= k:
                break
            graph.insert_edge(1, i)
            raised += 1
        assert jaccard_similarity(graph, 0, 1) <= (1 + rho) * epsilon + 1e-9

    def test_similar_edge_cannot_become_clearly_dissimilar(self):
        epsilon, rho = 0.4, 0.5
        # clique of 12: every edge has similarity 1
        clique = [(u, v) for u in range(12) for v in range(u + 1, 12)]
        graph = DynamicGraph(clique)
        assert jaccard_similarity(graph, 0, 1) >= (1 + rho) * epsilon
        k = jaccard_affordability(max(graph.degree(0), graph.degree(1)), rho, epsilon)
        # adversarial affecting updates: attach fresh pendant vertices to 0
        next_id = 100
        for _ in range(k):
            graph.insert_edge(0, next_id)
            next_id += 1
        assert jaccard_similarity(graph, 0, 1) >= (1 - rho) * epsilon - 1e-9
