"""Unit tests for StrCluResult computation (Fact 1) and result types."""

from __future__ import annotations

import pytest

from repro.core.labelling import EdgeLabel, exact_labelling
from repro.core.result import (
    Clustering,
    GroupByResult,
    clusterings_equal,
    compute_clusters,
    similar_neighbour_counts,
)
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.graph.generators import hub_and_noise_graph


@pytest.fixture
def labelled_two_triangles():
    """Two triangles joined by one dissimilar edge, plus a pendant noise vertex."""
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3), (5, 6)]
    graph = DynamicGraph(edges)
    labels = {canonical_edge(u, v): EdgeLabel.SIMILAR for u, v in edges}
    labels[canonical_edge(2, 3)] = EdgeLabel.DISSIMILAR
    labels[canonical_edge(5, 6)] = EdgeLabel.DISSIMILAR
    return graph, labels


class TestSimilarNeighbourCounts:
    def test_counts(self, labelled_two_triangles):
        graph, labels = labelled_two_triangles
        counts = similar_neighbour_counts(graph, labels)
        assert counts[0] == 2
        assert counts[2] == 2  # the (2,3) edge is dissimilar
        assert counts[6] == 0

    def test_stale_label_for_absent_edge_ignored(self):
        graph = DynamicGraph([(0, 1)])
        labels = {(0, 1): EdgeLabel.SIMILAR, (5, 6): EdgeLabel.SIMILAR}
        counts = similar_neighbour_counts(graph, labels)
        assert counts.get(5, 0) == 0


class TestComputeClusters:
    def test_two_clusters_with_mu_two(self, labelled_two_triangles):
        graph, labels = labelled_two_triangles
        clustering = compute_clusters(graph, labels, mu=2)
        assert clustering.num_clusters == 2
        assert clustering.as_frozen() == frozenset(
            {frozenset({0, 1, 2}), frozenset({3, 4, 5})}
        )
        assert clustering.cores == {0, 1, 2, 3, 4, 5}
        assert clustering.noise == {6}
        assert clustering.hubs == set()

    def test_high_mu_gives_no_clusters(self, labelled_two_triangles):
        graph, labels = labelled_two_triangles
        clustering = compute_clusters(graph, labels, mu=5)
        assert clustering.num_clusters == 0
        assert clustering.cores == set()
        assert clustering.noise == set(graph.vertices())

    def test_hub_detection(self):
        """A non-core vertex similar to cores of two different clusters is a hub."""
        clique_a = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        clique_b = [(u, v) for u in range(10, 14) for v in range(u + 1, 14)]
        edges = clique_a + clique_b + [(2, 20), (12, 20)]
        graph = DynamicGraph(edges)
        labels = {canonical_edge(u, v): EdgeLabel.SIMILAR for u, v in edges}
        clustering = compute_clusters(graph, labels, mu=3)
        assert clustering.num_clusters == 2
        assert 20 in clustering.hubs
        membership = clustering.membership()
        assert len(membership[20]) == 2

    def test_matches_role_structure_of_generator(self):
        """On a hub-and-noise planted graph with exact labels, SCAN roles match."""
        edges = hub_and_noise_graph(3, 10, hubs=2, noise=5, p_intra=0.9, seed=1)
        graph = DynamicGraph(edges)
        labels = exact_labelling(graph, 0.5)
        clustering = compute_clusters(graph, labels, mu=3)
        assert clustering.num_clusters >= 3
        noise_ids = {v for v in graph.vertices() if graph.degree(v) == 1}
        assert noise_ids <= clustering.noise

    def test_empty_graph(self):
        clustering = compute_clusters(DynamicGraph(), {}, mu=2)
        assert clustering.num_clusters == 0
        assert clustering.summary()["largest_cluster"] == 0


class TestClusteringHelpers:
    def test_top_k_ordering(self, labelled_two_triangles):
        graph, labels = labelled_two_triangles
        graph.insert_edge(0, 7)
        labels[canonical_edge(0, 7)] = EdgeLabel.SIMILAR
        clustering = compute_clusters(graph, labels, mu=2)
        top = clustering.top_k(1)
        assert len(top) == 1
        assert len(top[0]) == 4  # {0,1,2,7} is now the largest cluster

    def test_partition_assignment_assigns_cores_and_satellites(self, labelled_two_triangles):
        graph, labels = labelled_two_triangles
        graph.insert_edge(0, 7)
        labels[canonical_edge(0, 7)] = EdgeLabel.SIMILAR
        clustering = compute_clusters(graph, labels, mu=2)
        assignment = clustering.partition_assignment(graph, labels)
        assert assignment[0] == assignment[1] == assignment[2] == assignment[7]
        assert assignment[3] == assignment[4] == assignment[5]
        assert assignment[0] != assignment[3]
        assert 6 not in assignment  # noise is omitted

    def test_cluster_of_core(self, labelled_two_triangles):
        graph, labels = labelled_two_triangles
        clustering = compute_clusters(graph, labels, mu=2)
        assert clustering.cluster_of_core(0) == clustering.cluster_of_core(1)
        assert clustering.cluster_of_core(99) is None

    def test_summary_keys(self, labelled_two_triangles):
        graph, labels = labelled_two_triangles
        summary = compute_clusters(graph, labels, mu=2).summary()
        assert set(summary) == {"clusters", "cores", "hubs", "noise", "largest_cluster"}

    def test_clusterings_equal(self, labelled_two_triangles):
        graph, labels = labelled_two_triangles
        a = compute_clusters(graph, labels, mu=2)
        b = compute_clusters(graph, labels, mu=2)
        assert clusterings_equal(a, b)
        b.noise.add(99)
        assert not clusterings_equal(a, b)


class TestGroupByResult:
    def test_group_accessors(self):
        result = GroupByResult(groups={1: {0, 1}, 2: {5}})
        assert result.num_groups == 2
        assert sorted(len(g) for g in result.as_sets()) == [1, 2]
        assert result.group_of(0) == [1]
        assert result.group_of(42) == []
