"""Unit tests for edge labels, the (½ρε, δ)-strategy and validity predicates."""

from __future__ import annotations

import random

import pytest

from repro.core.config import StrCluParams
from repro.core.estimator import ExactSimilarityOracle, SamplingSimilarityOracle
from repro.core.labelling import (
    EdgeLabel,
    LabellingStrategy,
    exact_labelling,
    is_valid_exact,
    is_valid_rho_approximate,
    mislabelled_edges,
)
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.graph.generators import planted_partition_graph
from repro.graph.similarity import SimilarityKind, jaccard_similarity


@pytest.fixture
def graph() -> DynamicGraph:
    return DynamicGraph(planted_partition_graph(2, 12, 0.6, 0.05, seed=8))


class TestEdgeLabel:
    def test_is_similar_flag(self):
        assert EdgeLabel.SIMILAR.is_similar
        assert not EdgeLabel.DISSIMILAR.is_similar

    def test_string_value(self):
        assert str(EdgeLabel.SIMILAR) == "similar"


class TestExactLabelling:
    def test_every_edge_labelled(self, graph):
        labels = exact_labelling(graph, 0.3)
        assert len(labels) == graph.num_edges

    def test_labels_follow_threshold(self, graph):
        labels = exact_labelling(graph, 0.3)
        for (u, v), label in labels.items():
            sigma = jaccard_similarity(graph, u, v)
            assert (label is EdgeLabel.SIMILAR) == (sigma >= 0.3)

    def test_is_valid_exact(self, graph):
        labels = exact_labelling(graph, 0.3)
        assert is_valid_exact(graph, labels, 0.3)

    def test_flipping_a_boundary_label_breaks_exact_validity(self, graph):
        labels = exact_labelling(graph, 0.3)
        # flip the similar edge with the highest similarity: definitely invalid
        best = max(
            (e for e, l in labels.items() if l is EdgeLabel.SIMILAR),
            key=lambda e: jaccard_similarity(graph, *e),
        )
        labels[best] = EdgeLabel.DISSIMILAR
        assert not is_valid_exact(graph, labels, 0.3)

    def test_missing_edge_label_is_invalid(self, graph):
        labels = exact_labelling(graph, 0.3)
        labels.pop(next(iter(labels)))
        assert not is_valid_rho_approximate(graph, labels, 0.3, 0.1)


class TestRhoApproximateValidity:
    def test_exact_labelling_is_rho_valid_for_any_rho(self, graph):
        labels = exact_labelling(graph, 0.3)
        for rho in (0.0, 0.1, 0.5):
            assert is_valid_rho_approximate(graph, labels, 0.3, rho)

    def test_dont_care_band_allows_either_label(self, graph):
        epsilon, rho = 0.3, 0.5
        labels = exact_labelling(graph, epsilon)
        flipped_in_band = 0
        for (u, v), label in list(labels.items()):
            sigma = jaccard_similarity(graph, u, v)
            if (1 - rho) * epsilon <= sigma < (1 + rho) * epsilon:
                labels[(u, v)] = (
                    EdgeLabel.DISSIMILAR if label is EdgeLabel.SIMILAR else EdgeLabel.SIMILAR
                )
                flipped_in_band += 1
        assert flipped_in_band > 0, "fixture should have edges in the dont-care band"
        assert is_valid_rho_approximate(graph, labels, epsilon, rho)

    def test_labels_outside_band_are_constrained(self, graph):
        epsilon, rho = 0.3, 0.1
        labels = exact_labelling(graph, epsilon)
        clearly_similar = [
            e
            for e in labels
            if jaccard_similarity(graph, *e) >= (1 + rho) * epsilon
        ]
        assert clearly_similar
        labels[clearly_similar[0]] = EdgeLabel.DISSIMILAR
        assert not is_valid_rho_approximate(graph, labels, epsilon, rho)


class TestLabellingStrategy:
    def test_exact_mode_reproduces_exact_labelling(self, graph):
        params = StrCluParams(epsilon=0.3, mu=3, rho=0.0)
        strategy = LabellingStrategy(params, ExactSimilarityOracle(graph))
        reference = exact_labelling(graph, 0.3)
        for u, v in graph.edges():
            assert strategy.label(u, v) is reference[canonical_edge(u, v)]

    def test_invocation_counter_advances(self, graph):
        params = StrCluParams(epsilon=0.3, mu=3, rho=0.0)
        strategy = LabellingStrategy(params, ExactSimilarityOracle(graph))
        strategy.label(0, 1)
        strategy.label(1, 2) if graph.has_edge(1, 2) else strategy.label(0, 1)
        assert strategy.invocations == 2

    def test_sampling_mode_is_mostly_rho_valid(self, graph):
        params = StrCluParams(epsilon=0.3, mu=3, rho=0.4, delta_star=0.01, seed=3)
        oracle = SamplingSimilarityOracle(
            graph, epsilon=params.epsilon, rng=random.Random(3)
        )
        strategy = LabellingStrategy(params, oracle)
        labels = {canonical_edge(u, v): strategy.label(u, v) for u, v in graph.edges()}
        assert is_valid_rho_approximate(graph, labels, params.epsilon, params.rho)

    def test_last_sample_size(self, graph):
        params = StrCluParams(epsilon=0.3, mu=3, rho=0.2)
        strategy = LabellingStrategy(
            params, SamplingSimilarityOracle(graph, rng=random.Random(0))
        )
        assert strategy.last_sample_size() == params.sample_size(1)
        exact = LabellingStrategy(
            StrCluParams(epsilon=0.3, mu=3, rho=0.0), ExactSimilarityOracle(graph)
        )
        assert exact.last_sample_size() == 0


class TestMislabelledEdges:
    def test_counts_differences_over_common_keys(self):
        a = {(0, 1): EdgeLabel.SIMILAR, (1, 2): EdgeLabel.DISSIMILAR}
        b = {(0, 1): EdgeLabel.DISSIMILAR, (1, 2): EdgeLabel.DISSIMILAR, (2, 3): EdgeLabel.SIMILAR}
        assert mislabelled_edges(a, b) == 1

    def test_zero_for_identical(self):
        labels = {(0, 1): EdgeLabel.SIMILAR}
        assert mislabelled_edges(labels, dict(labels)) == 0
