"""Unit tests for the similarity oracles (exact and sampling)."""

from __future__ import annotations

import random

import pytest

from repro.core.estimator import (
    ExactSimilarityOracle,
    SamplingSimilarityOracle,
    hoeffding_sample_size,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import planted_partition_graph
from repro.graph.similarity import SimilarityKind, cosine_similarity, jaccard_similarity
from repro.instrumentation import OpCounter


@pytest.fixture
def dense_graph() -> DynamicGraph:
    return DynamicGraph(planted_partition_graph(2, 15, 0.7, 0.1, seed=4))


class TestExactOracle:
    def test_matches_direct_functions(self, dense_graph):
        jaccard_oracle = ExactSimilarityOracle(dense_graph, SimilarityKind.JACCARD)
        cosine_oracle = ExactSimilarityOracle(dense_graph, SimilarityKind.COSINE)
        for u, v in list(dense_graph.edges())[:40]:
            assert jaccard_oracle.similarity(u, v) == jaccard_similarity(dense_graph, u, v)
            assert cosine_oracle.similarity(u, v) == cosine_similarity(dense_graph, u, v)

    def test_counts_operations(self, dense_graph):
        counter = OpCounter()
        oracle = ExactSimilarityOracle(dense_graph, counter=counter)
        oracle.similarity(0, 1)
        assert counter.get("similarity_eval") == 1
        assert counter.get("neighbour_probe") >= 1

    def test_ignores_num_samples(self, dense_graph):
        oracle = ExactSimilarityOracle(dense_graph)
        assert oracle.similarity(0, 1, num_samples=3) == oracle.similarity(0, 1)


class TestSamplingOracleJaccard:
    def test_estimate_within_tolerance_on_dense_edges(self, dense_graph):
        rng = random.Random(0)
        oracle = SamplingSimilarityOracle(dense_graph, rng=rng)
        failures = 0
        edges = list(dense_graph.edges())[:50]
        for u, v in edges:
            exact = jaccard_similarity(dense_graph, u, v)
            estimate = oracle.similarity(u, v, num_samples=3000)
            if abs(estimate - exact) > 0.08:
                failures += 1
        assert failures <= 2

    def test_estimate_in_unit_interval(self, dense_graph):
        rng = random.Random(1)
        oracle = SamplingSimilarityOracle(dense_graph, rng=rng)
        for u, v in list(dense_graph.edges())[:30]:
            estimate = oracle.similarity(u, v, num_samples=64)
            assert 0.0 <= estimate <= 1.0

    def test_deterministic_for_seed(self, dense_graph):
        a = SamplingSimilarityOracle(dense_graph, rng=random.Random(5)).similarity(0, 1, 128)
        b = SamplingSimilarityOracle(dense_graph, rng=random.Random(5)).similarity(0, 1, 128)
        assert a == b

    def test_invalid_sample_count(self, dense_graph):
        oracle = SamplingSimilarityOracle(dense_graph, rng=random.Random(0))
        with pytest.raises(ValueError):
            oracle.similarity(0, 1, num_samples=0)

    def test_counts_samples(self, dense_graph):
        counter = OpCounter()
        oracle = SamplingSimilarityOracle(dense_graph, rng=random.Random(0), counter=counter)
        oracle.similarity(0, 1, num_samples=77)
        assert counter.get("sample") == 77
        assert counter.get("similarity_eval") == 1

    def test_accuracy_improves_with_more_samples(self, dense_graph):
        """Mean absolute error must shrink as L grows (law of large numbers)."""
        edges = list(dense_graph.edges())[:25]

        def mean_error(samples: int, seed: int) -> float:
            oracle = SamplingSimilarityOracle(dense_graph, rng=random.Random(seed))
            total = 0.0
            for u, v in edges:
                total += abs(
                    oracle.similarity(u, v, num_samples=samples)
                    - jaccard_similarity(dense_graph, u, v)
                )
            return total / len(edges)

        small = mean_error(16, seed=3)
        large = mean_error(2048, seed=3)
        assert large < small


class TestSamplingOracleCosine:
    def test_estimate_close_to_exact(self, dense_graph):
        rng = random.Random(2)
        oracle = SamplingSimilarityOracle(
            dense_graph, kind=SimilarityKind.COSINE, epsilon=0.3, rng=rng
        )
        failures = 0
        for u, v in list(dense_graph.edges())[:40]:
            exact = cosine_similarity(dense_graph, u, v)
            estimate = oracle.similarity(u, v, num_samples=3000)
            if estimate == 0.0 and exact < 0.3:
                continue  # short-circuited by Lemma 8.2 — allowed
            if abs(estimate - exact) > 0.1:
                failures += 1
        assert failures <= 2

    def test_unbalanced_degrees_short_circuit_to_zero(self):
        # star centre with high degree vs a leaf: closed sizes 1+20 vs 2
        edges = [(0, i) for i in range(1, 21)]
        graph = DynamicGraph(edges)
        oracle = SamplingSimilarityOracle(
            graph, kind=SimilarityKind.COSINE, epsilon=0.9, rng=random.Random(0)
        )
        assert oracle.similarity(0, 1, num_samples=10) == 0.0


class TestHoeffdingSampleSize:
    def test_matches_theorem_4_1(self):
        import math

        assert hoeffding_sample_size(0.01, 0.05) == math.ceil(2 / 0.05**2 * math.log(200))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            hoeffding_sample_size(0.0, 0.1)
        with pytest.raises(ValueError):
            hoeffding_sample_size(0.1, 0.0)

    def test_empirical_failure_rate_below_delta(self):
        """Theorem 4.1: with L = (2/Δ²)ln(2/δ) the deviation exceeds Δ with
        probability at most δ.  Check empirically on one edge."""
        graph = DynamicGraph(planted_partition_graph(1, 12, 0.8, 0.0, seed=1))
        u, v = next(iter(graph.edges()))
        exact = jaccard_similarity(graph, u, v)
        delta, accuracy = 0.1, 0.15
        samples = hoeffding_sample_size(delta, accuracy)
        rng = random.Random(42)
        oracle = SamplingSimilarityOracle(graph, rng=rng)
        trials = 200
        violations = sum(
            1
            for _ in range(trials)
            if abs(oracle.similarity(u, v, num_samples=samples) - exact) > accuracy
        )
        # allow generous slack over delta * trials = 20 to keep the test stable
        assert violations <= 2 * delta * trials
