"""Unit tests for the heap-organised update tracker (Section 5.2)."""

from __future__ import annotations

import random

import pytest

from repro.dt.tracker import NaiveTracker, UpdateTracker
from repro.instrumentation import OpCounter


class TestSingleEdge:
    @pytest.mark.parametrize("tau", [1, 2, 3, 8, 9, 17, 64, 301])
    def test_matures_exactly_at_tau(self, tau):
        tracker = UpdateTracker()
        tracker.track("u", "v", tau)
        matured_at = None
        for i in range(1, tau + 5):
            endpoint = "u" if i % 2 else "v"
            matured = tracker.register_update(endpoint)
            if matured:
                matured_at = i
                assert matured == [("u", "v")]
                break
        assert matured_at == tau

    def test_updates_on_untracked_vertex_are_ignored(self):
        tracker = UpdateTracker()
        tracker.track(1, 2, 5)
        assert tracker.register_update(99) == []
        assert tracker.num_tracked() == 1

    def test_untrack_stops_tracking(self):
        tracker = UpdateTracker()
        tracker.track(1, 2, 3)
        tracker.untrack(1, 2)
        assert not tracker.is_tracked(1, 2)
        for _ in range(10):
            assert tracker.register_update(1) == []

    def test_untrack_unknown_edge_is_noop(self):
        tracker = UpdateTracker()
        tracker.untrack(5, 6)
        assert tracker.num_tracked() == 0

    def test_double_track_rejected(self):
        tracker = UpdateTracker()
        tracker.track(1, 2, 3)
        with pytest.raises(ValueError):
            tracker.track(2, 1, 4)

    def test_invalid_tau_rejected(self):
        tracker = UpdateTracker()
        with pytest.raises(ValueError):
            tracker.track(1, 2, 0)

    def test_retrack_after_maturity(self):
        tracker = UpdateTracker()
        tracker.track(1, 2, 2)
        assert tracker.register_update(1) == []
        assert tracker.register_update(2) == [(1, 2)]
        # restart with a new threshold; counting starts afresh
        tracker.track(1, 2, 3)
        assert tracker.register_update(1) == []
        assert tracker.register_update(1) == []
        assert tracker.register_update(2) == [(1, 2)]

    def test_increment_and_process_ready_split(self):
        """DynELM's step ordering: increments first, drain later."""
        tracker = UpdateTracker()
        tracker.track(1, 2, 1)
        tracker.increment(1)
        # nothing processed yet
        assert tracker.num_tracked() == 1
        assert tracker.process_ready(1) == [(1, 2)]


class TestSharedCounterSemantics:
    def test_shared_counter_counts_all_updates(self):
        tracker = UpdateTracker()
        tracker.track(1, 2, 10)
        tracker.track(1, 3, 10)
        for _ in range(4):
            tracker.register_update(1)
        assert tracker.shared_counter(1) == 4

    def test_update_affects_all_incident_tracked_edges(self):
        """One update at u must count toward every DT instance incident on u."""
        tracker = UpdateTracker()
        tracker.track(0, 1, 3)
        tracker.track(0, 2, 3)
        tracker.track(0, 3, 3)
        matured = []
        for _ in range(3):
            matured.extend(tracker.register_update(0))
        assert sorted(matured) == [(0, 1), (0, 2), (0, 3)]

    def test_heap_sizes_track_membership(self):
        tracker = UpdateTracker()
        tracker.track(0, 1, 5)
        tracker.track(0, 2, 5)
        assert tracker.heap_size(0) == 2
        assert tracker.heap_size(1) == 1
        tracker.untrack(0, 1)
        assert tracker.heap_size(0) == 1
        assert tracker.heap_size(1) == 0

    def test_memory_elements_counts(self):
        tracker = UpdateTracker()
        tracker.track(0, 1, 5)
        tracker.track(1, 2, 5)
        elements = tracker.memory_elements()
        assert elements["dt_coordinator"] == 2
        assert elements["dt_heap_entry"] == 4


class TestEquivalenceWithNaiveTracker:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_maturities_as_naive(self, seed):
        """The heap-organised tracker must mature every edge at exactly the
        same update as the one-counter-per-edge straw man."""
        rng = random.Random(seed)
        n = 12
        heap_tracker = UpdateTracker()
        naive = NaiveTracker()
        tracked = set()

        def threshold():
            return rng.randint(1, 40)

        for step in range(1500):
            action = rng.random()
            if action < 0.25 and len(tracked) < 40:
                u, v = rng.sample(range(n), 2)
                if not heap_tracker.is_tracked(u, v):
                    tau = threshold()
                    heap_tracker.track(u, v, tau)
                    naive.track(u, v, tau)
                    tracked.add((min(u, v), max(u, v)))
            elif action < 0.30 and tracked:
                edge = rng.choice(sorted(tracked))
                heap_tracker.untrack(*edge)
                naive.untrack(*edge)
                tracked.discard(edge)
            else:
                u = rng.randrange(n)
                matured_heap = sorted(heap_tracker.register_update(u))
                matured_naive = sorted(naive.register_update(u))
                assert matured_heap == matured_naive, f"step {step}"
                for edge in matured_heap:
                    tracked.discard(edge)

    def test_heap_tracker_does_less_work_per_update(self):
        """With many incident edges and large thresholds, the shared-counter
        tracker performs asymptotically fewer per-update operations."""
        heap_counter = OpCounter()
        naive_counter = OpCounter()
        heap_tracker = UpdateTracker(heap_counter)
        naive = NaiveTracker(naive_counter)
        fan_out = 200
        tau = 1000
        for v in range(1, fan_out + 1):
            heap_tracker.track(0, v, tau)
            naive.track(0, v, tau)
        heap_counter.reset()
        naive_counter.reset()
        for _ in range(300):
            heap_tracker.register_update(0)
            naive.register_update(0)
        assert naive_counter.get("counter_increment") == 300 * fan_out
        assert heap_counter.get("heap_op") < naive_counter.get("counter_increment") / 10
