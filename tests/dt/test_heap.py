"""Unit tests for the addressable DtHeap."""

from __future__ import annotations

import random

import pytest

from repro.dt.heap import DtHeap, DtHeapEntry


def make_entry(payload, key):
    return DtHeapEntry(payload, key=key, round_start=0)


class TestBasicOperations:
    def test_push_and_peek(self):
        heap = DtHeap()
        heap.push(make_entry("a", 5))
        heap.push(make_entry("b", 2))
        heap.push(make_entry("c", 9))
        assert heap.peek_min().payload == "b"
        assert len(heap) == 3

    def test_pop_min_order(self):
        heap = DtHeap()
        for key in [7, 3, 9, 1, 5]:
            heap.push(make_entry(key, key))
        popped = [heap.pop_min().key for _ in range(5)]
        assert popped == [1, 3, 5, 7, 9]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            DtHeap().pop_min()

    def test_peek_empty_returns_none(self):
        assert DtHeap().peek_min() is None

    def test_double_push_rejected(self):
        heap = DtHeap()
        entry = make_entry("x", 1)
        heap.push(entry)
        with pytest.raises(ValueError):
            heap.push(entry)

    def test_remove_arbitrary_entry(self):
        heap = DtHeap()
        entries = [make_entry(i, i) for i in range(10)]
        for e in entries:
            heap.push(e)
        heap.remove(entries[4])
        assert len(heap) == 9
        assert not entries[4].in_heap
        remaining = sorted(e.key for e in heap.entries())
        assert remaining == [0, 1, 2, 3, 5, 6, 7, 8, 9]

    def test_remove_foreign_entry_raises(self):
        heap = DtHeap()
        heap.push(make_entry("a", 1))
        with pytest.raises(ValueError):
            heap.remove(make_entry("b", 2))

    def test_update_key_up_and_down(self):
        heap = DtHeap()
        entries = {name: make_entry(name, key) for name, key in [("a", 5), ("b", 10), ("c", 15)]}
        for e in entries.values():
            heap.push(e)
        heap.update_key(entries["c"], 1)
        assert heap.peek_min().payload == "c"
        heap.update_key(entries["c"], 20)
        assert heap.peek_min().payload == "a"
        assert heap.check_invariant()


class TestRandomisedInvariant:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_sorted_reference_under_random_ops(self, seed):
        rng = random.Random(seed)
        heap = DtHeap()
        live = {}
        next_id = 0
        for _ in range(1500):
            op = rng.random()
            if op < 0.45 or not live:
                entry = make_entry(next_id, rng.randrange(1000))
                heap.push(entry)
                live[next_id] = entry
                next_id += 1
            elif op < 0.70:
                payload = rng.choice(list(live))
                heap.update_key(live[payload], rng.randrange(1000))
            elif op < 0.85:
                payload = rng.choice(list(live))
                heap.remove(live.pop(payload))
            else:
                expected_min = min(e.key for e in live.values())
                assert heap.peek_min().key == expected_min
        assert heap.check_invariant()
        assert len(heap) == len(live)

    def test_pop_all_returns_sorted_sequence(self):
        rng = random.Random(99)
        heap = DtHeap()
        keys = [rng.randrange(10_000) for _ in range(500)]
        for i, key in enumerate(keys):
            heap.push(make_entry(i, key))
        popped = [heap.pop_min().key for _ in range(len(keys))]
        assert popped == sorted(keys)
