"""Unit tests for the standalone DT instance (two-participant protocol)."""

from __future__ import annotations

import math
import random

import pytest

from repro.dt.instance import DTInstance, naive_message_cost


class TestMaturityExactness:
    @pytest.mark.parametrize("tau", [1, 2, 5, 8, 9, 16, 37, 100, 513])
    def test_matures_exactly_at_tau_alternating(self, tau):
        dt = DTInstance(tau)
        for i in range(1, tau + 1):
            matured = dt.increment(i % 2)
            assert matured == (i == tau), f"tau={tau}, step={i}"
        assert dt.mature

    @pytest.mark.parametrize("tau", [1, 3, 8, 9, 50, 200])
    def test_matures_exactly_at_tau_single_participant(self, tau):
        dt = DTInstance(tau)
        for i in range(1, tau + 1):
            assert dt.increment(0) == (i == tau)

    @pytest.mark.parametrize("seed", range(5))
    def test_matures_exactly_at_tau_random_participants(self, seed):
        rng = random.Random(seed)
        tau = rng.randint(1, 400)
        dt = DTInstance(tau)
        for i in range(1, tau + 1):
            assert dt.increment(rng.randint(0, 1)) == (i == tau)

    def test_increment_after_maturity_raises(self):
        dt = DTInstance(2)
        dt.increment(0)
        dt.increment(1)
        with pytest.raises(RuntimeError):
            dt.increment(0)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            DTInstance(0)

    def test_invalid_participant(self):
        dt = DTInstance(5)
        with pytest.raises(ValueError):
            dt.increment(2)


class TestMessageComplexity:
    def test_small_tau_uses_straightforward_mode(self):
        dt = DTInstance(6)
        assert dt.straightforward

    def test_large_tau_uses_slack_rounds(self):
        dt = DTInstance(1000)
        assert not dt.straightforward
        assert dt.slack == 1000 // 4

    @pytest.mark.parametrize("tau", [64, 256, 1024, 4096])
    def test_message_bound_logarithmic(self, tau):
        """Total messages must be O(h log(tau/h)) — far below the naive tau."""
        rng = random.Random(tau)
        dt = DTInstance(tau)
        for _ in range(tau):
            dt.increment(rng.randint(0, 1))
        assert dt.mature
        bound = 12 * (math.log2(tau) + 1) + 40
        assert dt.messages <= bound
        assert dt.messages < naive_message_cost(tau)

    def test_round_count_logarithmic(self):
        dt = DTInstance(10_000)
        rng = random.Random(1)
        for _ in range(10_000):
            dt.increment(rng.randint(0, 1))
        assert dt.mature
        assert dt.rounds <= math.log(10_000) / math.log(4 / 3) + 2

    def test_remaining_decreases_across_rounds(self):
        dt = DTInstance(500)
        seen = [dt.remaining]
        for i in range(499):
            dt.increment(i % 2)
            if dt.remaining != seen[-1]:
                seen.append(dt.remaining)
        assert seen == sorted(seen, reverse=True)
        # each round removes at least a quarter of the remaining threshold
        for before, after in zip(seen, seen[1:]):
            assert after <= before
