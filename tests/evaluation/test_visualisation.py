"""Unit tests for the visualisation-substitution statistics (Figures 4-6)."""

from __future__ import annotations

import pytest

from repro.baselines.scan import static_scan
from repro.evaluation.visualisation import (
    cluster_density_report,
    epsilon_sweep_summaries,
    hub_assignment_colouring,
    top_k_cluster_summary,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import planted_partition_graph


@pytest.fixture
def clustered_graph():
    edges = planted_partition_graph(4, 12, 0.6, 0.02, seed=12)
    graph = DynamicGraph(edges)
    clustering = static_scan(graph, 0.35, 4)
    return graph, clustering


class TestClusterSummaries:
    def test_summaries_count_and_sizes(self, clustered_graph):
        graph, clustering = clustered_graph
        summaries = top_k_cluster_summary(graph, clustering, k=20)
        assert 1 <= len(summaries) <= 20
        for summary in summaries:
            assert summary.size >= 1
            assert 0.0 <= summary.intra_density <= 1.0
            assert summary.boundary_edges >= 0

    def test_planted_clusters_are_dense_inside(self, clustered_graph):
        """The figures' claim: intra-cluster density far above the global density."""
        graph, clustering = clustered_graph
        report = cluster_density_report(graph, clustering, k=10)
        global_density = graph.num_edges / (
            graph.num_vertices * (graph.num_vertices - 1) / 2
        )
        assert report["avg_intra_density"] > 3 * global_density

    def test_empty_clustering(self):
        graph = DynamicGraph([(0, 1)])
        clustering = static_scan(graph, 0.9, 5)
        report = cluster_density_report(graph, clustering, k=5)
        assert report["clusters"] == 0


class TestColouring:
    def test_every_clustered_vertex_gets_one_colour(self, clustered_graph):
        graph, clustering = clustered_graph
        colouring = hub_assignment_colouring(clustering, graph)
        clustered = set().union(*clustering.clusters)
        assert set(colouring) == clustered
        assert all(isinstance(c, int) for c in colouring.values())

    def test_noise_not_coloured(self, clustered_graph):
        graph, clustering = clustered_graph
        colouring = hub_assignment_colouring(clustering, graph)
        for v in clustering.noise:
            assert v not in colouring


class TestEpsilonSweep:
    def test_higher_epsilon_gives_more_smaller_clusters_or_fewer_cores(self, clustered_graph):
        """Figure 5's qualitative claim: raising ε fragments/shrinks clusters."""
        graph, _ = clustered_graph
        epsilons = [0.25, 0.35, 0.5, 0.7]
        clusterings = {eps: static_scan(graph, eps, 4) for eps in epsilons}
        rows = epsilon_sweep_summaries(graph, clusterings)
        assert [row["epsilon"] for row in rows] == sorted(epsilons)
        cores = [row["num_cores"] for row in rows]
        assert cores[0] >= cores[-1]
        noise = [row["num_noise"] for row in rows]
        assert noise[-1] >= noise[0]
