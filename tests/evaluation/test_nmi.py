"""Unit tests for normalised mutual information."""

from __future__ import annotations

import pytest

from repro.evaluation.nmi import normalised_mutual_information


class TestNMI:
    def test_identical_assignments(self):
        a = {1: 0, 2: 0, 3: 1, 4: 1}
        assert normalised_mutual_information(a, a) == pytest.approx(1.0)

    def test_relabelled_assignments_are_equivalent(self):
        a = {1: 0, 2: 0, 3: 1, 4: 1}
        b = {1: 7, 2: 7, 3: 3, 4: 3}
        assert normalised_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_assignments_score_low(self):
        a = {i: i % 2 for i in range(200)}
        b = {i: (i // 100) % 2 for i in range(200)}
        assert normalised_mutual_information(a, b) < 0.05

    def test_partial_agreement_is_between_zero_and_one(self):
        a = {1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1}
        b = {1: 0, 2: 0, 3: 1, 4: 1, 5: 1, 6: 0}
        value = normalised_mutual_information(a, b)
        assert 0.0 < value < 1.0

    def test_disjoint_vertex_sets(self):
        assert normalised_mutual_information({1: 0}, {2: 0}) == 0.0

    def test_empty(self):
        assert normalised_mutual_information({}, {}) == 0.0

    def test_single_cluster_convention(self):
        a = {1: 0, 2: 0, 3: 0}
        b = {1: 4, 2: 4, 3: 4}
        assert normalised_mutual_information(a, b) == 1.0

    def test_symmetry(self):
        a = {1: 0, 2: 0, 3: 1, 4: 2, 5: 2}
        b = {1: 1, 2: 0, 3: 1, 4: 2, 5: 2}
        ab = normalised_mutual_information(a, b)
        ba = normalised_mutual_information(b, a)
        assert ab == pytest.approx(ba)

    def test_extra_vertices_ignored(self):
        a = {1: 0, 2: 0, 3: 1, 99: 5}
        b = {1: 0, 2: 0, 3: 1}
        assert normalised_mutual_information(a, b) == pytest.approx(1.0)
