"""Unit tests for the Adjusted Rand Index."""

from __future__ import annotations

import random

import pytest

from repro.evaluation.ari import adjusted_rand_index


class TestAdjustedRandIndex:
    def test_identical_partitions_score_one(self):
        assignment = {i: i % 3 for i in range(30)}
        assert adjusted_rand_index(assignment, dict(assignment)) == pytest.approx(1.0)

    def test_relabelled_partitions_score_one(self):
        a = {i: i % 3 for i in range(30)}
        b = {i: (i % 3) * 10 + 7 for i in range(30)}  # same blocks, different labels
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_random_partitions_score_near_zero(self):
        rng = random.Random(0)
        a = {i: rng.randrange(4) for i in range(3000)}
        b = {i: rng.randrange(4) for i in range(3000)}
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_partial_agreement_between_zero_and_one(self):
        a = {i: i // 10 for i in range(40)}
        b = dict(a)
        for i in range(0, 40, 7):
            b[i] = (b[i] + 1) % 4
        score = adjusted_rand_index(a, b)
        assert 0.0 < score < 1.0

    def test_only_common_vertices_considered(self):
        a = {1: 0, 2: 0, 3: 1}
        b = {2: 5, 3: 6, 99: 7}
        # common support {2, 3}: split apart in both -> perfect agreement
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_empty_common_support(self):
        assert adjusted_rand_index({1: 0}, {2: 0}) == 1.0

    def test_single_cluster_everywhere(self):
        a = {i: 0 for i in range(10)}
        b = {i: 42 for i in range(10)}
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_symmetric(self):
        rng = random.Random(3)
        a = {i: rng.randrange(3) for i in range(200)}
        b = {i: rng.randrange(5) for i in range(200)}
        assert adjusted_rand_index(a, b) == pytest.approx(adjusted_rand_index(b, a))

    def test_matches_sklearn_style_reference_on_small_case(self):
        """Hand-checked contingency example."""
        a = {0: "x", 1: "x", 2: "x", 3: "y", 4: "y", 5: "y"}
        b = {0: 1, 1: 1, 2: 2, 3: 2, 4: 2, 5: 2}
        # contingency: x -> {1:2, 2:1}, y -> {2:3}
        # sum_cells = C(2,2)+C(1,2)+C(3,2) = 1 + 0 + 3 = 4
        # sum_rows = C(3,2)+C(3,2) = 6 ; sum_cols = C(2,2)+C(4,2) = 1 + 6 = 7
        # expected = 6*7/15 = 2.8 ; max = 6.5 ; ARI = (4-2.8)/(6.5-2.8)
        assert adjusted_rand_index(a, b) == pytest.approx((4 - 2.8) / (6.5 - 2.8))
