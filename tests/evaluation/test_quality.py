"""Unit tests for the Section 9.2 quality measurements."""

from __future__ import annotations

import pytest

from repro.baselines.scan import scan_labelling, static_scan
from repro.core.config import StrCluParams
from repro.core.dynelm import DynELM
from repro.core.labelling import EdgeLabel
from repro.core.result import Clustering, compute_clusters
from repro.evaluation.quality import (
    individual_cluster_quality,
    mislabelled_rate,
    quality_report,
    set_jaccard,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import planted_partition_graph


@pytest.fixture
def quality_setup():
    edges = planted_partition_graph(3, 14, 0.55, 0.03, seed=6)
    graph = DynamicGraph(edges)
    epsilon, mu = 0.35, 4
    exact_labels = scan_labelling(graph, epsilon)
    exact_clustering = compute_clusters(graph, exact_labels, mu)
    params = StrCluParams(epsilon=epsilon, mu=mu, rho=0.05, delta_star=0.01, seed=2)
    approx = DynELM.from_edges(edges, params)
    return graph, epsilon, exact_labels, exact_clustering, approx


class TestMislabelledRate:
    def test_zero_for_identical_labellings(self, quality_setup):
        graph, epsilon, exact_labels, *_ = quality_setup
        assert mislabelled_rate(exact_labels, dict(exact_labels)) == 0.0

    def test_counts_flips(self, quality_setup):
        graph, epsilon, exact_labels, *_ = quality_setup
        modified = dict(exact_labels)
        flipped = list(modified)[:5]
        for edge in flipped:
            modified[edge] = (
                EdgeLabel.DISSIMILAR
                if modified[edge] is EdgeLabel.SIMILAR
                else EdgeLabel.SIMILAR
            )
        assert mislabelled_rate(exact_labels, modified) == pytest.approx(5 / len(exact_labels))

    def test_missing_edges_count_as_mislabelled(self, quality_setup):
        graph, epsilon, exact_labels, *_ = quality_setup
        partial = dict(list(exact_labels.items())[:-3])
        assert mislabelled_rate(exact_labels, partial) == pytest.approx(3 / len(exact_labels))

    def test_empty_exact_labelling(self):
        assert mislabelled_rate({}, {}) == 0.0

    def test_small_rho_gives_small_rate(self, quality_setup):
        graph, epsilon, exact_labels, _exact_clustering, approx = quality_setup
        rate = mislabelled_rate(exact_labels, approx.labels)
        assert rate < 0.2


class TestSetJaccard:
    def test_identical(self):
        assert set_jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert set_jaccard({1}, {2}) == 0.0

    def test_empty_sets(self):
        assert set_jaccard(set(), set()) == 1.0


class TestIndividualClusterQuality:
    def test_perfect_for_identical_clusterings(self, quality_setup):
        *_, exact_clustering, _approx = quality_setup
        mn, avg = individual_cluster_quality(exact_clustering, exact_clustering, 10)
        assert mn == pytest.approx(1.0)
        assert avg == pytest.approx(1.0)

    def test_zero_when_no_exact_core_in_cluster(self):
        approx = Clustering(clusters=[{1, 2, 3}], cores={1}, hubs=set(), noise=set())
        exact = Clustering(clusters=[{7, 8}], cores={7, 8}, hubs=set(), noise=set())
        mn, avg = individual_cluster_quality(approx, exact, 5)
        assert mn == 0.0

    def test_empty_approximate_clustering(self):
        empty = Clustering()
        exact = Clustering(clusters=[{1, 2}], cores={1, 2})
        assert individual_cluster_quality(empty, exact, 10) == (1.0, 1.0)

    def test_split_cluster_detected(self):
        """An exact cluster split in two gives individual quality around 1/2."""
        exact = Clustering(clusters=[set(range(20))], cores=set(range(20)))
        approx = Clustering(
            clusters=[set(range(10)), set(range(10, 20))], cores=set(range(20))
        )
        mn, avg = individual_cluster_quality(approx, exact, 2)
        assert mn == pytest.approx(0.5)
        assert avg == pytest.approx(0.5)


class TestQualityReport:
    def test_report_row_structure(self, quality_setup):
        graph, epsilon, exact_labels, exact_clustering, approx = quality_setup
        report = quality_report(
            dataset="toy",
            rho=0.05,
            epsilon=epsilon,
            graph=graph,
            exact_labels=exact_labels,
            approx_labels=approx.labels,
            exact_clustering=exact_clustering,
            approx_clustering=approx.clustering(),
            top_ks=(1, 5),
        )
        row = report.row()
        assert row["dataset"] == "toy"
        assert 0.0 <= row["ARI"] <= 1.0
        assert "top1_min" in row and "top5_avg" in row

    def test_high_quality_for_small_rho(self, quality_setup):
        graph, epsilon, exact_labels, exact_clustering, approx = quality_setup
        report = quality_report(
            "toy", 0.05, epsilon, graph, exact_labels, approx.labels,
            exact_clustering, approx.clustering(), top_ks=(1, 5, 10),
        )
        assert report.ari > 0.8
        assert report.mislabelled_rate < 0.2
