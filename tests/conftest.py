"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import StrCluParams
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import planted_partition_graph, powerlaw_cluster_graph


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG for tests that need randomness."""
    return random.Random(12345)


@pytest.fixture
def triangle_graph() -> DynamicGraph:
    """A triangle plus a pendant vertex — the smallest interesting StrClu input."""
    return DynamicGraph([(0, 1), (1, 2), (0, 2), (2, 3)])


@pytest.fixture
def two_communities() -> DynamicGraph:
    """Two dense 6-vertex communities joined by one bridge edge."""
    edges = planted_partition_graph(2, 6, p_intra=0.9, p_inter=0.0, seed=7)
    graph = DynamicGraph(edges)
    if not graph.has_edge(0, 6):
        graph.insert_edge(0, 6)
    return graph


@pytest.fixture
def community_edges() -> list:
    """Edge list of a 4-community planted-partition graph (48 vertices)."""
    return planted_partition_graph(4, 12, p_intra=0.5, p_inter=0.03, seed=3)


@pytest.fixture
def powerlaw_edges() -> list:
    """Edge list of a small heavy-tailed graph with triangles."""
    return powerlaw_cluster_graph(n=120, attachments=3, triangle_prob=0.6, seed=9)


@pytest.fixture
def exact_params() -> StrCluParams:
    """Exact-mode parameters (rho = 0): DynELM must equal static SCAN."""
    return StrCluParams(epsilon=0.4, mu=3, rho=0.0, seed=1)


@pytest.fixture
def approx_params() -> StrCluParams:
    """Default approximate parameters used by most algorithm tests."""
    return StrCluParams(epsilon=0.4, mu=3, rho=0.05, delta_star=0.01, seed=1)
